//! Query execution operators: scan, filter, project, aggregate.
//!
//! Range scans resolve chunk ids through the MetaData service's R-tree
//! ("the MetaData Service may be queried using the range part of the query
//! to retrieve ids of all matching sub-tables"), then ask the owning BDS
//! instances for the sub-tables.

use crate::agg::Accumulator;
use crate::ast::{AggFunc, RangePred, SelectItem};
use orv_bds::{BdsService, Deployment};
use orv_cluster::{CancelToken, FaultInjector};
use orv_obs::{EventLog, Spans};
use orv_types::{
    BoundingBox, ColumnBatch, Error, Interval, Record, Result, Schema, SubTableId, TableId, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Materialized rows plus their schema-ish column names.
#[derive(Clone, Debug)]
pub struct RowSet {
    /// Column names, in row order.
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Record>,
}

/// Range scan of a base table with R-tree chunk pruning and row filtering.
pub fn scan(
    deployment: &Deployment,
    table: TableId,
    range: Option<&BoundingBox>,
) -> Result<(Arc<Schema>, Vec<Record>)> {
    scan_cancellable(deployment, table, range, &CancelToken::none())
}

/// Resolve `range` against a schema: `(column index, interval)` checks
/// for the bounded attributes the schema actually has. Attributes the
/// box bounds but the schema lacks are unconstrained (they never
/// exclude a row) — the same semantics as `SubTable::filter_range`.
fn range_checks(schema: &Schema, range: &BoundingBox) -> Vec<(usize, Interval)> {
    range
        .bounded_attrs()
        .filter_map(|(name, iv)| schema.index_of(name).map(|i| (i, iv)))
        .collect()
}

/// Range-filter one batch with typed column loops: build the keep list
/// from primitive comparisons, then gather — no `Record` is ever built.
pub fn filter_batch_range(batch: &ColumnBatch, checks: &[(usize, Interval)]) -> ColumnBatch {
    if checks.is_empty() || batch.is_empty() {
        return batch.clone();
    }
    let keep = batch.mask_to_keep(|r| {
        checks
            .iter()
            .all(|&(ci, iv)| iv.contains(batch.column(ci).as_f64(r)))
    });
    batch.gather(&keep)
}

/// [`scan`] in columnar form: R-tree chunk pruning, then one typed
/// [`ColumnBatch`] per surviving chunk with the range filter applied as
/// primitive-array loops. This is the head of the batch execution path;
/// rows are materialized from these batches only at the service edge
/// ([`batches_to_rows`]).
pub fn scan_batches(
    deployment: &Deployment,
    table: TableId,
    range: Option<&BoundingBox>,
    cancel: &CancelToken,
) -> Result<(Arc<Schema>, Vec<ColumnBatch>)> {
    let md = deployment.metadata();
    let schema = md.schema(table)?;
    let chunk_ids = match range {
        Some(rg) => md.find_chunks(table, rg)?,
        None => md.all_chunks(table)?,
    };
    let checks = range
        .map(|rg| range_checks(&schema, rg))
        .unwrap_or_default();
    let services = BdsService::for_all_nodes_with_instruments(
        deployment,
        FaultInjector::disabled(),
        Spans::disabled(),
        EventLog::disabled(),
        cancel.clone(),
    )?;
    let mut batches = Vec::with_capacity(chunk_ids.len());
    for chunk in chunk_ids {
        cancel.check()?;
        let id = SubTableId { table, chunk };
        let node = md.chunk_meta(id)?.node;
        let st = services[node.index()].subtable(id)?;
        batches.push(filter_batch_range(&st.to_batch(), &checks));
    }
    Ok((schema, batches))
}

/// The service-edge conversion: materialize a run of batches into rows.
pub fn batches_to_rows(batches: &[ColumnBatch]) -> Result<Vec<Record>> {
    let mut rows = Vec::with_capacity(batches.iter().map(|b| b.num_rows()).sum());
    for b in batches {
        b.append_records_to(&mut rows)?;
    }
    Ok(rows)
}

/// [`scan`] observing a [`CancelToken`]: the token is checked between
/// chunks and inside every BDS read, so a cancelled query stops within
/// one chunk fetch. Internally columnar ([`scan_batches`]); the rows
/// come out byte-identical to the legacy row path
/// ([`scan_rows_reference`]), which the differential oracle tier
/// asserts.
pub fn scan_cancellable(
    deployment: &Deployment,
    table: TableId,
    range: Option<&BoundingBox>,
    cancel: &CancelToken,
) -> Result<(Arc<Schema>, Vec<Record>)> {
    let (schema, batches) = scan_batches(deployment, table, range, cancel)?;
    Ok((schema, batches_to_rows(&batches)?))
}

/// The legacy row-at-a-time scan, kept as the differential oracle for
/// the batch path: every query shape must produce byte-identical rows
/// through [`scan_batches`] + [`batches_to_rows`] and through this.
pub fn scan_rows_reference(
    deployment: &Deployment,
    table: TableId,
    range: Option<&BoundingBox>,
    cancel: &CancelToken,
) -> Result<(Arc<Schema>, Vec<Record>)> {
    let md = deployment.metadata();
    let schema = md.schema(table)?;
    let chunk_ids = match range {
        Some(rg) => md.find_chunks(table, rg)?,
        None => md.all_chunks(table)?,
    };
    let services = BdsService::for_all_nodes_with_instruments(
        deployment,
        FaultInjector::disabled(),
        Spans::disabled(),
        EventLog::disabled(),
        cancel.clone(),
    )?;
    let mut rows = Vec::new();
    for chunk in chunk_ids {
        cancel.check()?;
        let id = SubTableId { table, chunk };
        let node = md.chunk_meta(id)?.node;
        let mut st = services[node.index()].subtable(id)?;
        if let Some(rg) = range {
            st = st.filter_range(rg)?;
        }
        rows.extend(st.records());
    }
    Ok((schema, rows))
}

/// A shard-side chunk scan: the schema, the rows, and per-chunk run
/// lengths `(chunk, rows)` in scan order.
pub type ChunkScan = (Arc<Schema>, Vec<Record>, Vec<(orv_types::ChunkId, usize)>);

/// Scan an explicit chunk list of one table, in ascending chunk order,
/// returning the rows plus per-chunk run lengths `(chunk, rows)` in scan
/// order. This is the federation shard's sub-query primitive: the router
/// needs the run boundaries to dedup and reassemble partial results
/// chunk-by-chunk.
pub fn scan_chunks(
    deployment: &Deployment,
    table: TableId,
    chunks: &[orv_types::ChunkId],
    range: Option<&BoundingBox>,
    cancel: &CancelToken,
) -> Result<ChunkScan> {
    let md = deployment.metadata();
    let schema = md.schema(table)?;
    let services = BdsService::for_all_nodes_with_instruments(
        deployment,
        FaultInjector::disabled(),
        Spans::disabled(),
        EventLog::disabled(),
        cancel.clone(),
    )?;
    let mut sorted: Vec<_> = chunks.to_vec();
    sorted.sort();
    sorted.dedup();
    let checks = range
        .map(|rg| range_checks(&schema, rg))
        .unwrap_or_default();
    let mut rows = Vec::new();
    let mut runs = Vec::with_capacity(sorted.len());
    for chunk in sorted {
        cancel.check()?;
        let id = SubTableId { table, chunk };
        let node = md.chunk_meta(id)?.node;
        let st = services[node.index()].subtable(id)?;
        // Columnar per chunk; the run boundary is the batch row count,
        // rows materialize straight into the shard response buffer.
        let batch = filter_batch_range(&st.to_batch(), &checks);
        batch.append_records_to(&mut rows)?;
        runs.push((chunk, batch.num_rows()));
    }
    Ok((schema, rows, runs))
}

/// CRC32C over a canonical encoding of `rows`, sealed shard-side on every
/// federated sub-response and re-verified at the router, so a corrupted
/// partial result is rejected (and hedged/failed over) instead of merged.
pub fn rows_checksum(rows: &[Record]) -> u32 {
    use std::fmt::Write as _;
    let mut buf = String::new();
    for r in rows {
        // Debug form is canonical here: every Value variant renders
        // distinctly and deterministically.
        let _ = write!(buf, "{r:?};");
    }
    orv_cluster::crc32c(buf.as_bytes())
}

/// Column names of a schema.
pub fn column_names(schema: &Schema) -> Vec<String> {
    schema.attrs().iter().map(|a| a.name.clone()).collect()
}

/// Sort by output columns (stable; `(name, descending)` pairs applied in
/// order) and truncate to `limit`.
pub fn order_and_limit(
    mut rowset: RowSet,
    order_by: &[(String, bool)],
    limit: Option<usize>,
) -> Result<RowSet> {
    if !order_by.is_empty() {
        let keys: Vec<(usize, bool)> = order_by
            .iter()
            .map(|(name, desc)| {
                rowset
                    .columns
                    .iter()
                    .position(|c| c == name)
                    .map(|i| (i, *desc))
                    .ok_or_else(|| Error::Plan(format!("unknown ORDER BY column `{name}`")))
            })
            .collect::<Result<_>>()?;
        rowset.rows.sort_by(|a, b| {
            for &(i, desc) in &keys {
                let ord = a.get(i).cmp(&b.get(i));
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = limit {
        rowset.rows.truncate(n);
    }
    Ok(rowset)
}

/// Post-filter materialized rows by range predicates over named output
/// columns (used when predicates cannot be pushed below an aggregation
/// view).
pub fn filter_rows(
    columns: &[String],
    rows: Vec<Record>,
    preds: &[RangePred],
) -> Result<Vec<Record>> {
    if preds.is_empty() {
        return Ok(rows);
    }
    let checks: Vec<(usize, f64, f64)> = preds
        .iter()
        .map(|p| {
            columns
                .iter()
                .position(|c| c == &p.attr)
                .map(|i| (i, p.lo, p.hi))
                .ok_or_else(|| Error::Plan(format!("unknown column `{}` in predicate", p.attr)))
        })
        .collect::<Result<_>>()?;
    Ok(rows
        .into_iter()
        .filter(|r| {
            checks.iter().all(|&(i, lo, hi)| {
                let v = r.get(i).as_f64();
                lo <= v && v <= hi
            })
        })
        .collect())
}

/// Apply a select list (no aggregates) to rows.
pub fn project(columns: &[String], rows: Vec<Record>, items: &[SelectItem]) -> Result<RowSet> {
    if items.len() == 1 && items[0] == SelectItem::All {
        return Ok(RowSet {
            columns: columns.to_vec(),
            rows,
        });
    }
    let mut indices = Vec::new();
    let mut names = Vec::new();
    for item in items {
        match item {
            SelectItem::Column(name) => {
                let idx = columns
                    .iter()
                    .position(|c| c == name)
                    .ok_or_else(|| Error::Plan(format!("unknown column `{name}`")))?;
                indices.push(idx);
                names.push(name.clone());
            }
            SelectItem::All => {
                for (i, c) in columns.iter().enumerate() {
                    indices.push(i);
                    names.push(c.clone());
                }
            }
            SelectItem::Aggregate(..) => {
                return Err(Error::Plan(
                    "aggregates must be handled by the aggregate operator".into(),
                ))
            }
        }
    }
    let rows = rows.into_iter().map(|r| r.project(&indices)).collect();
    Ok(RowSet {
        columns: names,
        rows,
    })
}

/// Grouped aggregation. `items` may mix group columns and aggregates; every
/// plain column must appear in `group_by`.
pub fn aggregate(
    columns: &[String],
    rows: Vec<Record>,
    items: &[SelectItem],
    group_by: &[String],
) -> Result<RowSet> {
    merge_aggregate(columns, vec![rows], items, group_by)
}

/// Grouped aggregation over *partitioned* input: each element of `parts`
/// is one partition's rows (a federated shard's partial result). Every
/// partition is aggregated into partial accumulators, then the partials
/// are merged per group key ([`Accumulator::merge`]) — the re-aggregation
/// step of federated AVG/COUNT/SUM. With a single partition this *is*
/// [`aggregate`], so the two paths cannot drift.
pub fn merge_aggregate(
    columns: &[String],
    parts: Vec<Vec<Record>>,
    items: &[SelectItem],
    group_by: &[String],
) -> Result<RowSet> {
    let col_idx = |name: &str| -> Result<usize> {
        columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| Error::Plan(format!("unknown column `{name}`")))
    };
    let group_indices: Vec<usize> = group_by.iter().map(|g| col_idx(g)).collect::<Result<_>>()?;

    // Resolve the output plan: each item is either a group key or an
    // accumulator spec.
    enum OutCol {
        Group(usize),                // index into the group key
        Agg(AggFunc, Option<usize>), // column index to aggregate
    }
    let mut out_cols = Vec::new();
    let mut names = Vec::new();
    for item in items {
        match item {
            SelectItem::Column(name) => {
                let gpos = group_by.iter().position(|g| g == name).ok_or_else(|| {
                    Error::Plan(format!("column `{name}` must appear in GROUP BY"))
                })?;
                out_cols.push(OutCol::Group(gpos));
                names.push(name.clone());
            }
            SelectItem::Aggregate(f, arg) => {
                let idx = arg.as_deref().map(col_idx).transpose()?;
                out_cols.push(OutCol::Agg(*f, idx));
                names.push(match arg {
                    Some(a) => format!("{}({a})", f.name()),
                    None => format!("{}(*)", f.name()),
                });
            }
            SelectItem::All => {
                return Err(Error::Plan(
                    "SELECT * cannot be combined with aggregation".into(),
                ))
            }
        }
    }

    let make_accs = || -> Vec<Accumulator> {
        out_cols
            .iter()
            .filter_map(|c| match c {
                OutCol::Agg(f, _) => Some(Accumulator::new(*f)),
                OutCol::Group(_) => None,
            })
            .collect()
    };
    // Aggregate each partition independently, then merge partials.
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    for rows in &parts {
        let mut partial: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        for row in rows {
            let key = row.key(&group_indices);
            let accs = partial.entry(key).or_insert_with(make_accs);
            let mut ai = 0;
            for c in &out_cols {
                if let OutCol::Agg(_, idx) = c {
                    accs[ai].update(idx.map(|i| row.get(i)));
                    ai += 1;
                }
            }
        }
        for (key, accs) in partial {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&accs) {
                        a.merge(b);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
    }
    // Global aggregation over zero rows still yields one output row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(Vec::new(), make_accs());
    }

    let mut out_rows: Vec<Record> = groups
        .into_iter()
        .map(|(key, accs)| {
            let mut vals = Vec::with_capacity(out_cols.len());
            let mut ai = 0;
            for c in &out_cols {
                match c {
                    OutCol::Group(g) => vals.push(key[*g]),
                    OutCol::Agg(..) => {
                        vals.push(accs[ai].finish());
                        ai += 1;
                    }
                }
            }
            Record::new(vals)
        })
        .collect();
    out_rows.sort_by(|a, b| a.values().cmp(b.values()));
    Ok(RowSet {
        columns: names,
        rows: out_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AggFunc;
    use orv_bds::{generate_dataset, DatasetSpec};
    use orv_types::Interval;

    fn deployed() -> (Deployment, TableId) {
        let d = Deployment::in_memory(2);
        let h = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid([4, 4, 2])
                .partition([2, 2, 2])
                .scalar_attrs(&["oilp"])
                .seed(3)
                .build(),
            &d,
        )
        .unwrap();
        (d, h.table)
    }

    #[test]
    fn scan_prunes_with_rtree() {
        let (d, t) = deployed();
        let range = BoundingBox::from_dims([
            ("x", Interval::new(0.0, 1.0)),
            ("y", Interval::new(0.0, 1.0)),
        ]);
        let (schema, rows) = scan(&d, t, Some(&range)).unwrap();
        assert_eq!(schema.arity(), 4);
        assert_eq!(rows.len(), 8); // 2×2×2 points
        let (_, all) = scan(&d, t, None).unwrap();
        assert_eq!(all.len(), 32);
    }

    #[test]
    fn project_selects_and_reorders() {
        let (d, t) = deployed();
        let (schema, rows) = scan(&d, t, None).unwrap();
        let cols = column_names(&schema);
        let rs = project(
            &cols,
            rows,
            &[
                SelectItem::Column("oilp".into()),
                SelectItem::Column("x".into()),
            ],
        )
        .unwrap();
        assert_eq!(rs.columns, vec!["oilp", "x"]);
        assert_eq!(rs.rows[0].arity(), 2);
        // Unknown column errors.
        let (schema, rows) = scan(&d, t, None).unwrap();
        assert!(project(
            &column_names(&schema),
            rows,
            &[SelectItem::Column("zz".into())]
        )
        .is_err());
    }

    #[test]
    fn grouped_aggregation() {
        let (d, t) = deployed();
        let (schema, rows) = scan(&d, t, None).unwrap();
        let cols = column_names(&schema);
        let rs = aggregate(
            &cols,
            rows,
            &[
                SelectItem::Column("z".into()),
                SelectItem::Aggregate(AggFunc::Count, None),
                SelectItem::Aggregate(AggFunc::Avg, Some("oilp".into())),
            ],
            &["z".into()],
        )
        .unwrap();
        assert_eq!(rs.columns, vec!["z", "COUNT(*)", "AVG(oilp)"]);
        assert_eq!(rs.rows.len(), 2); // z ∈ {0, 1}
        for row in &rs.rows {
            assert_eq!(row.get(1), Value::I64(16));
            let avg = row.get(2).as_f64();
            assert!((0.0..1.0).contains(&avg));
        }
    }

    #[test]
    fn global_aggregation_without_group_by() {
        let (d, t) = deployed();
        let (schema, rows) = scan(&d, t, None).unwrap();
        let cols = column_names(&schema);
        let rs = aggregate(
            &cols,
            rows,
            &[SelectItem::Aggregate(AggFunc::Sum, Some("x".into()))],
            &[],
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        // Sum of x over 4×4×2 grid: each x in 0..4 appears 8 times.
        assert_eq!(rs.rows[0].get(0), Value::F64((1 + 2 + 3) as f64 * 8.0));
    }

    #[test]
    fn merge_aggregate_matches_single_pass_partitioning() {
        let (d, t) = deployed();
        let (schema, rows) = scan(&d, t, None).unwrap();
        let cols = column_names(&schema);
        let items = [
            SelectItem::Column("z".into()),
            SelectItem::Aggregate(AggFunc::Count, None),
            SelectItem::Aggregate(AggFunc::Min, Some("oilp".into())),
            SelectItem::Aggregate(AggFunc::Max, Some("oilp".into())),
        ];
        let group_by = ["z".to_string()];
        let single = aggregate(&cols, rows.clone(), &items, &group_by).unwrap();
        // Any partitioning (even with an empty part) re-aggregates to the
        // same result for the exact aggregates.
        let mid = rows.len() / 3;
        let parts = vec![rows[..mid].to_vec(), Vec::new(), rows[mid..].to_vec()];
        let merged = merge_aggregate(&cols, parts, &items, &group_by).unwrap();
        assert_eq!(merged.columns, single.columns);
        assert_eq!(merged.rows, single.rows);
    }

    #[test]
    fn scan_chunks_orders_dedups_and_accounts_runs() {
        let (d, t) = deployed();
        let md = d.metadata();
        let all = md.all_chunks(t).unwrap();
        // Shuffled, duplicated input: output is ascending, deduped.
        let mut chunks = all.clone();
        chunks.reverse();
        chunks.push(all[0]);
        let (_, rows, runs) = scan_chunks(&d, t, &chunks, None, &CancelToken::none()).unwrap();
        let (_, oracle) = scan(&d, t, None).unwrap();
        assert_eq!(rows, oracle, "chunk-order reassembly must equal a scan");
        assert_eq!(runs.len(), all.len());
        let run_ids: Vec<_> = runs.iter().map(|(c, _)| *c).collect();
        assert_eq!(run_ids, all, "runs must come back in ascending chunk order");
        assert_eq!(runs.iter().map(|(_, n)| n).sum::<usize>(), rows.len());

        // Checksums: equal rows agree, different rows disagree.
        assert_eq!(rows_checksum(&rows), rows_checksum(&oracle));
        assert_ne!(rows_checksum(&rows), rows_checksum(&rows[1..]));
        assert_eq!(rows_checksum(&[]), rows_checksum(&[]));
    }

    #[test]
    fn plain_column_must_be_grouped() {
        let (d, t) = deployed();
        let (schema, rows) = scan(&d, t, None).unwrap();
        let cols = column_names(&schema);
        let err = aggregate(
            &cols,
            rows,
            &[
                SelectItem::Column("x".into()),
                SelectItem::Aggregate(AggFunc::Count, None),
            ],
            &["z".into()],
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }
}
