//! The Query Planning Service: choose a QES from the cost models.
//!
//! "It is the task of the QPS to choose the appropriate QES, based on
//! dataset parameters, system parameters and the query, so as to achieve
//! best performance." The planner pulls dataset parameters (`T`, `c_R`,
//! `c_S`, `n_e`, record sizes) out of the MetaData service — building the
//! page-level join index if it is not already stored — derives system
//! parameters from the cluster description, and evaluates both Section 5
//! models.

use orv_cluster::ClusterSpec;
use orv_costmodel::{choose_algorithm, Choice, CostParams, SystemParams};
use orv_join::{ConnectivityGraph, JoinAlgorithm};
use orv_metadata::MetadataService;
use orv_types::{Result, TableId};

/// Default γ values (CPU operations per hash build / lookup), matching the
/// host calibration ballpark; override via [`Planner::with_gammas`].
pub const DEFAULT_GAMMA_BUILD: f64 = 280.0;
/// Default γ2.
pub const DEFAULT_GAMMA_LOOKUP: f64 = 230.0;

/// The planner's decision plus all the evidence.
#[derive(Clone, Copy, Debug)]
pub struct PlanExplain {
    /// The chosen algorithm.
    pub algorithm: JoinAlgorithm,
    /// Model comparison.
    pub choice: Choice,
    /// The dataset parameters used.
    pub dataset: CostParams,
    /// The system parameters used.
    pub system: SystemParams,
}

/// The Query Planning Service.
#[derive(Clone, Debug)]
pub struct Planner {
    spec: ClusterSpec,
    gamma_build: f64,
    gamma_lookup: f64,
}

impl Planner {
    /// Plan against the given cluster description.
    pub fn new(spec: ClusterSpec) -> Self {
        Planner {
            spec,
            gamma_build: DEFAULT_GAMMA_BUILD,
            gamma_lookup: DEFAULT_GAMMA_LOOKUP,
        }
    }

    /// Override the CPU operation counts (e.g. from host calibration).
    pub fn with_gammas(mut self, gamma_build: f64, gamma_lookup: f64) -> Self {
        self.gamma_build = gamma_build;
        self.gamma_lookup = gamma_lookup;
        self
    }

    /// The cluster spec planned against.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Extract dataset cost parameters for `left ⊕ right` on `join_attrs`
    /// from the MetaData service (building and persisting the join index
    /// if absent).
    pub fn dataset_params(
        &self,
        md: &MetadataService,
        left: TableId,
        right: TableId,
        join_attrs: &[&str],
    ) -> Result<CostParams> {
        let t = md.total_records(left)? as f64;
        let chunks_l = md.all_chunks(left)?.len().max(1) as f64;
        let chunks_r = md.all_chunks(right)?.len().max(1) as f64;
        let n_e = match md.get_join_index(left, right, join_attrs) {
            Some(pairs) => pairs.len() as f64,
            None => {
                let g = ConnectivityGraph::build(md, left, right, join_attrs, None)?;
                let edges: Vec<_> = g.edges().collect();
                let n = edges.len() as f64;
                md.put_join_index(left, right, join_attrs, edges);
                n
            }
        };
        Ok(CostParams {
            t,
            c_r: t / chunks_l,
            c_s: md.total_records(right)? as f64 / chunks_r,
            n_e,
            rs_r: md.schema(left)?.record_size() as f64,
            rs_s: md.schema(right)?.record_size() as f64,
        })
    }

    /// Like [`Planner::dataset_params`], but guaranteed cheap: when the
    /// join index has not been built yet, `n_e` is *estimated* as the
    /// aligned 1:1 case (one edge per chunk of the larger side) instead
    /// of building the connectivity graph. Admission-time cost
    /// prediction uses this so classifying a query never costs more
    /// than a few metadata lookups.
    pub fn estimate_params(
        &self,
        md: &MetadataService,
        left: TableId,
        right: TableId,
        join_attrs: &[&str],
    ) -> Result<CostParams> {
        let t = md.total_records(left)? as f64;
        let chunks_l = md.all_chunks(left)?.len().max(1) as f64;
        let chunks_r = md.all_chunks(right)?.len().max(1) as f64;
        let n_e = match md.get_join_index(left, right, join_attrs) {
            Some(pairs) => pairs.len() as f64,
            None => chunks_l.max(chunks_r),
        };
        Ok(CostParams {
            t,
            c_r: t / chunks_l,
            c_s: md.total_records(right)? as f64 / chunks_r,
            n_e,
            rs_r: md.schema(left)?.record_size() as f64,
            rs_s: md.schema(right)?.record_size() as f64,
        })
    }

    /// [`Planner::plan_join`] on [`Planner::estimate_params`]: the same
    /// model comparison, but never builds (or persists) the join index.
    pub fn predict_join(
        &self,
        md: &MetadataService,
        left: TableId,
        right: TableId,
        join_attrs: &[&str],
    ) -> Result<PlanExplain> {
        let dataset = self.estimate_params(md, left, right, join_attrs)?;
        let system = SystemParams::from_cluster(&self.spec, self.gamma_build, self.gamma_lookup);
        let choice = choose_algorithm(&dataset, &system)?;
        Ok(PlanExplain {
            algorithm: if choice.indexed_join {
                JoinAlgorithm::IndexedJoin
            } else {
                JoinAlgorithm::GraceHash
            },
            choice,
            dataset,
            system,
        })
    }

    /// Full planning: choose IJ or GH for the join view.
    pub fn plan_join(
        &self,
        md: &MetadataService,
        left: TableId,
        right: TableId,
        join_attrs: &[&str],
    ) -> Result<PlanExplain> {
        let dataset = self.dataset_params(md, left, right, join_attrs)?;
        let system = SystemParams::from_cluster(&self.spec, self.gamma_build, self.gamma_lookup);
        let choice = choose_algorithm(&dataset, &system)?;
        Ok(PlanExplain {
            algorithm: if choice.indexed_join {
                JoinAlgorithm::IndexedJoin
            } else {
                JoinAlgorithm::GraceHash
            },
            choice,
            dataset,
            system,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orv_bds::{generate_dataset, DatasetSpec, Deployment};

    fn deploy(p1: [u64; 3], p2: [u64; 3]) -> (Deployment, TableId, TableId) {
        let d = Deployment::in_memory(2);
        let t1 = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid([16, 16, 4])
                .partition(p1)
                .scalar_attrs(&["oilp"])
                .seed(1)
                .build(),
            &d,
        )
        .unwrap();
        let t2 = generate_dataset(
            &DatasetSpec::builder("t2")
                .grid([16, 16, 4])
                .partition(p2)
                .scalar_attrs(&["wp"])
                .seed(2)
                .build(),
            &d,
        )
        .unwrap();
        (d, t1.table, t2.table)
    }

    #[test]
    fn extracts_dataset_params_from_metadata() {
        let (d, t1, t2) = deploy([4, 4, 4], [4, 4, 4]);
        let planner = Planner::new(ClusterSpec::paper_testbed(2, 2));
        let p = planner
            .dataset_params(d.metadata(), t1, t2, &["x", "y", "z"])
            .unwrap();
        assert_eq!(p.t, 1024.0);
        assert_eq!(p.c_r, 64.0);
        assert_eq!(p.c_s, 64.0);
        assert_eq!(p.n_e, 16.0); // identical partitions → 1:1
        assert_eq!(p.rs_r, 16.0);
        // Index was persisted.
        assert!(d
            .metadata()
            .get_join_index(t1, t2, &["x", "y", "z"])
            .is_some());
    }

    #[test]
    fn estimate_params_never_builds_the_index() {
        let (d, t1, t2) = deploy([4, 4, 4], [4, 4, 4]);
        let planner = Planner::new(ClusterSpec::paper_testbed(2, 2));
        let md = d.metadata();
        let est = planner
            .estimate_params(md, t1, t2, &["x", "y", "z"])
            .unwrap();
        assert_eq!(est.n_e, 16.0, "aligned estimate: one edge per chunk");
        assert!(
            md.get_join_index(t1, t2, &["x", "y", "z"]).is_none(),
            "estimation must not persist an index"
        );
        // Once the index exists, the estimate uses the exact edge count.
        planner
            .dataset_params(md, t1, t2, &["x", "y", "z"])
            .unwrap();
        let exact = planner
            .estimate_params(md, t1, t2, &["x", "y", "z"])
            .unwrap();
        assert_eq!(exact.n_e, 16.0);
        assert!(planner.predict_join(md, t1, t2, &["x", "y", "z"]).is_ok());
    }

    #[test]
    fn aligned_partitions_choose_ij() {
        let (d, t1, t2) = deploy([4, 4, 4], [4, 4, 4]);
        let planner = Planner::new(ClusterSpec::paper_testbed(2, 2));
        let plan = planner
            .plan_join(d.metadata(), t1, t2, &["x", "y", "z"])
            .unwrap();
        assert_eq!(plan.algorithm, JoinAlgorithm::IndexedJoin);
        assert!(plan.choice.ij_total < plan.choice.gh_total);
    }

    #[test]
    fn pathological_partitions_choose_gh() {
        // Orthogonal slabs: every left chunk overlaps every right chunk in
        // its x-row → n_e/m_S large.
        let (d, t1, t2) = deploy([16, 1, 1], [1, 16, 1]);
        // Make the CPU slow so the lookup blow-up dominates.
        let mut spec = ClusterSpec::paper_testbed(2, 2);
        spec.cpu_ops_per_sec = 1.0e6;
        let planner = Planner::new(spec);
        let plan = planner
            .plan_join(d.metadata(), t1, t2, &["x", "y", "z"])
            .unwrap();
        assert_eq!(plan.algorithm, JoinAlgorithm::GraceHash);
    }

    #[test]
    fn gammas_override_shifts_decision() {
        let (d, t1, t2) = deploy([16, 16, 1], [4, 4, 4]);
        let md = d.metadata();
        let base = Planner::new(ClusterSpec::paper_testbed(2, 2));
        let p = base.dataset_params(md, t1, t2, &["x", "y", "z"]).unwrap();
        assert!(p.n_e > p.m_s(), "mismatched partitions should add edges");
        // With free CPU, IJ always wins; with absurdly expensive lookups,
        // GH wins.
        let cheap = base.clone().with_gammas(1e-6, 1e-6);
        let costly = base.with_gammas(1e9, 1e9);
        assert_eq!(
            cheap
                .plan_join(md, t1, t2, &["x", "y", "z"])
                .unwrap()
                .algorithm,
            JoinAlgorithm::IndexedJoin
        );
        assert_eq!(
            costly
                .plan_join(md, t1, t2, &["x", "y", "z"])
                .unwrap()
                .algorithm,
            JoinAlgorithm::GraceHash
        );
    }
}
