//! Fixture-driven integration coverage: one positive (fires), one
//! negative (clean), and one suppressed variant per rule, plus the
//! classification, suppression-grammar, JSON-stability and exit-code
//! contracts the CI gate depends on. The workspace rules (`L008`–`L010`)
//! are exercised through [`lint_files`] with multi-file fixture sets.

use orv_lint::{exit_code, lint_files, lint_source, Diagnostic, RULE_IDS};

/// Rules that fired for `src` at `path`, in output order.
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(path, src).iter().map(|d| d.rule).collect()
}

fn assert_clean(path: &str, src: &str) {
    let diags = lint_source(path, src);
    assert!(diags.is_empty(), "expected clean, got: {diags:?}");
}

/// Run the full engine (file + workspace rules) over a fixture file set.
fn lint_set(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_files(&owned)
}

// A runtime path no rule allowlists, in a crate L003 watches.
const JOIN_PATH: &str = "crates/join/src/fixture.rs";
// The service layer: L003 watches its RwLock catalog + queue locks.
const QUERY_PATH: &str = "crates/query/src/fixture.rs";

#[test]
fn l001_panics_positive_negative_suppressed() {
    assert_eq!(
        fired(JOIN_PATH, "fn f(x: Option<u32>) -> u32 { x.unwrap() }"),
        ["L001"]
    );
    assert_eq!(
        fired(
            JOIN_PATH,
            "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }"
        ),
        ["L001"]
    );
    assert_eq!(fired(JOIN_PATH, "fn f() { panic!(\"boom\"); }"), ["L001"]);
    // Parser-combinator style `expect(&token)` is not Option::expect.
    assert_clean(JOIN_PATH, "fn f(p: &mut P) { p.expect(&Token::LBrace); }");
    assert_clean(
        JOIN_PATH,
        "fn f(x: Option<u32>) -> Option<u32> { x.map(|v| v + 1) }",
    );
    assert_clean(
        JOIN_PATH,
        "fn f(x: Option<u32>) -> u32 {\n    // orv-lint: allow(L001) -- fixture: invariant documented here\n    x.unwrap()\n}",
    );
}

#[test]
fn l002_bare_sleep_positive_negative_suppressed() {
    assert_eq!(
        fired(
            JOIN_PATH,
            "fn f() { std::thread::sleep(Duration::from_millis(5)); }"
        ),
        ["L002"]
    );
    assert_eq!(fired(JOIN_PATH, "fn f() { thread::sleep(D); }"), ["L002"]);
    // The cancellable slice helper is the sanctioned spelling…
    assert_clean(
        JOIN_PATH,
        "fn f(c: &CancelToken) { c.sleep(D).unwrap_or(()); }",
    );
    // …and the primitive itself lives on the allowlist.
    assert_clean(
        "crates/cluster/src/cancel.rs",
        "fn f() { std::thread::sleep(slice); }",
    );
    assert_clean(
        JOIN_PATH,
        "fn f() {\n    // orv-lint: allow(L002) -- fixture: fixed pacing independent of cancellation\n    std::thread::sleep(D);\n}",
    );
}

#[test]
fn l002_unbounded_recv_and_park_positive_negative_suppressed() {
    // Bare `recv()` waits forever — same unkillable shape as a raw sleep.
    assert_eq!(
        fired(JOIN_PATH, "fn f(rx: &Receiver<u32>) { let _ = rx.recv(); }"),
        ["L002"]
    );
    assert_eq!(
        fired(JOIN_PATH, "fn f() { std::thread::park(); }"),
        ["L002"]
    );
    // The bounded forms are the sanctioned spelling…
    assert_clean(
        JOIN_PATH,
        "fn f(rx: &Receiver<u32>) { let _ = rx.recv_timeout(budget.slice()); }",
    );
    // …`recv(args)` on a domain type is not the channel wait…
    assert_clean(JOIN_PATH, "fn f(io: &mut Io) { io.recv(&mut buf); }");
    // …and the slice primitive's own file may park however it likes.
    assert_clean(
        "crates/cluster/src/cancel.rs",
        "fn f() { std::thread::park(); }",
    );
    assert_clean(
        JOIN_PATH,
        "fn f(rx: &Receiver<u32>) {\n    // orv-lint: allow(L002) -- fixture: sender lives in the same scope, send precedes recv\n    let _ = rx.recv();\n}",
    );
}

#[test]
fn l003_guard_across_blocking_positive_negative_suppressed() {
    let hold =
        "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    let g = m.lock();\n    tx.send(*g);\n}";
    assert_eq!(fired(JOIN_PATH, hold), ["L003"]);
    // Dropping the guard before the send is the fix.
    assert_clean(
        JOIN_PATH,
        "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    let v = { let g = m.lock(); *g };\n    tx.send(v);\n}",
    );
    assert_clean(
        JOIN_PATH,
        "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    let g = m.lock();\n    let v = *g;\n    drop(g);\n    tx.send(v);\n}",
    );
    // The rule only watches the concurrency crates.
    assert_clean("crates/layout/src/fixture.rs", hold);
    assert_clean(
        JOIN_PATH,
        "fn f(m: &Mutex<u32>, tx: &Sender<u32>) {\n    let g = m.lock();\n    // orv-lint: allow(L003) -- fixture: bounded channel is never full here\n    tx.send(*g);\n}",
    );
}

#[test]
fn l003_rwlock_catalog_pattern_positive_negative_suppressed() {
    // The service layer is watched: a statement-final `.read();` binds a
    // catalog guard, and holding it across a send fires.
    let hold = "fn f(&self, tx: &Sender<Vec<String>>) {\n    let cat = self.catalog.read();\n    tx.send(cat.names());\n}";
    assert_eq!(fired(QUERY_PATH, hold), ["L003"]);
    // A write guard is a guard too.
    assert_eq!(
        fired(
            QUERY_PATH,
            "fn f(&self, tx: &Sender<u32>) {\n    let mut cat = self.catalog.write();\n    tx.send(cat.register(v));\n}"
        ),
        ["L003"]
    );
    // The engine's sanctioned idiom: chain off the temporary guard so it
    // dies inside the statement, then block freely.
    assert_clean(
        QUERY_PATH,
        "fn f(&self, tx: &Sender<Option<ViewDef>>) {\n    let view = self.catalog.read().get(name).cloned();\n    tx.send(view);\n}",
    );
    // Scoping the guard out before blocking is also clean…
    assert_clean(
        QUERY_PATH,
        "fn f(&self, tx: &Sender<Vec<String>>) {\n    let names = {\n        let cat = self.catalog.read();\n        cat.names()\n    };\n    tx.send(names);\n}",
    );
    // …and a documented suppression still works.
    assert_clean(
        QUERY_PATH,
        "fn f(&self, tx: &Sender<Vec<String>>) {\n    let cat = self.catalog.read();\n    // orv-lint: allow(L003) -- fixture: rendezvous channel, receiver never blocks\n    tx.send(cat.names());\n}",
    );
}

#[test]
fn l004_file_writes_positive_negative_suppressed() {
    assert_eq!(
        fired(JOIN_PATH, "fn f() { let _ = File::create(\"x\"); }"),
        ["L004"]
    );
    assert_eq!(
        fired(JOIN_PATH, "fn f() { fs::write(\"x\", b\"y\").ok(); }"),
        ["L004"]
    );
    // Reads are fine; and the checksummed sinks are allowlisted.
    assert_clean(JOIN_PATH, "fn f() { let _ = File::open(\"x\"); }");
    assert_clean(
        "crates/metadata/src/persist.rs",
        "fn f() { let _ = File::create(\"x\"); }",
    );
    assert_clean(
        "crates/obs/src/export.rs",
        "fn f() { fs::write(\"x\", b\"y\").ok(); }",
    );
    assert_clean(
        JOIN_PATH,
        "fn f() {\n    // orv-lint: allow(L004) -- fixture: bytes are sealed with a checksum upstream\n    let _ = File::create(\"x\");\n}",
    );
}

#[test]
fn l005_literal_obs_names_positive_negative_suppressed() {
    assert_eq!(
        fired(
            JOIN_PATH,
            "fn f(o: &Obs) { o.events.emit(\"qes_choice\", Vec::new); }"
        ),
        ["L005"]
    );
    assert_eq!(
        fired(
            JOIN_PATH,
            "fn f(o: &Obs) { let _s = o.spans.span(\"n0/build\"); }"
        ),
        ["L005"]
    );
    // Latency recording is a name sink too: `ServingReport` only exports
    // histograms named in `names::LAT_ALL`.
    assert_eq!(
        fired(
            JOIN_PATH,
            "fn f(o: &Obs) { o.metrics.record_latency(\"lat/exec_secs\", secs); }"
        ),
        ["L005"]
    );
    assert_clean(
        JOIN_PATH,
        "fn f(o: &Obs) { o.metrics.record_latency(names::LAT_EXEC, secs); }",
    );
    // Registry constants and builders are the sanctioned spelling; later
    // arguments (payload keys) may stay literal.
    assert_clean(
        JOIN_PATH,
        "fn f(o: &Obs) { o.events.emit(names::QES_CHOICE, || vec![(\"algo\", v)]); }",
    );
    assert_clean(
        JOIN_PATH,
        "fn f(o: &Obs) { let _s = o.spans.span(names::span_ij(0, names::PHASE_BUILD)); }",
    );
    // The registry itself defines the strings.
    assert_clean(
        "crates/obs/src/names.rs",
        "pub fn f(o: &Obs) { o.events.emit(\"qes_choice\", Vec::new); }",
    );
    assert_clean(
        JOIN_PATH,
        "fn f(o: &Obs) {\n    // orv-lint: allow(L005) -- fixture: ad-hoc diagnostic event, not replayed\n    o.events.emit(\"one_off\", Vec::new);\n}",
    );
}

#[test]
fn l006_ambient_clock_rng_positive_negative_suppressed() {
    assert_eq!(
        fired(JOIN_PATH, "fn f() { let t = Instant::now(); }"),
        ["L006"]
    );
    assert_eq!(
        fired(JOIN_PATH, "fn f() { let t = SystemTime::now(); }"),
        ["L006"]
    );
    assert_eq!(
        fired(JOIN_PATH, "fn f() { let x = rand::random::<u64>(); }"),
        ["L006"]
    );
    // Seeded draws and the allowlisted time owners are fine.
    assert_clean(JOIN_PATH, "fn f(s: u64) { let x = splitmix64(s); }");
    assert_clean(
        "crates/cluster/src/cancel.rs",
        "fn f() { let t = Instant::now(); }",
    );
    assert_clean(
        "crates/obs/src/span.rs",
        "fn f() { let t = Instant::now(); }",
    );
    assert_clean(
        JOIN_PATH,
        "fn f() {\n    // orv-lint: allow(L006) -- fixture: wall-clock stats only, never control flow\n    let t = Instant::now();\n}",
    );
}

#[test]
fn l007_adhoc_retry_loops_positive_negative_suppressed() {
    // An unbounded-by-policy retry loop is a retry-storm amplifier.
    assert_eq!(
        fired(
            QUERY_PATH,
            "fn f() {\n    for attempt in 0..3 {\n        if send(attempt).is_ok() { return; }\n    }\n}"
        ),
        ["L007"]
    );
    assert_eq!(
        fired(
            JOIN_PATH,
            "fn f() {\n    let mut retries = 0;\n    loop {\n        if go().is_ok() { break; }\n        retries += 1;\n    }\n}"
        ),
        ["L007"]
    );
    // Policy-capped and budget-drawn retries are the sanctioned forms.
    assert_clean(
        QUERY_PATH,
        "fn f(&self) {\n    for attempt in 0..self.cfg.recovery.max_attempts {\n        self.cancel.sleep(self.cfg.recovery.backoff(attempt));\n    }\n}",
    );
    assert_clean(
        QUERY_PATH,
        "fn f() {\n    let mut retries = 0;\n    loop {\n        if !budget.try_draw() { return Err(e); }\n        retries += 1;\n    }\n}",
    );
    // The rule only watches runtime crates…
    assert_clean(
        "crates/bench/src/fixture.rs",
        "fn f() {\n    for attempt in 0..3 {\n        go(attempt);\n    }\n}",
    );
    // …and a documented suppression still works.
    assert_clean(
        QUERY_PATH,
        "fn f() {\n    // orv-lint: allow(L007) -- fixture: bounded by caller's deadline budget\n    for attempt in 0..3 {\n        go(attempt);\n    }\n}",
    );
}

#[test]
fn test_code_is_exempt_everywhere() {
    let nasty = "fn f() { x.unwrap(); std::thread::sleep(D); let t = Instant::now(); }";
    // Path-classified test/dev files.
    for p in [
        "crates/join/tests/chaos.rs",
        "examples/demo.rs",
        "crates/bench/src/bin/figures.rs",
    ] {
        assert_clean(p, nasty);
    }
    // Item-classified test code inside a runtime file.
    let src = "fn runtime() -> u32 { 1 }\n#[cfg(test)]\nmod tests {\n    fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert_clean(JOIN_PATH, src);
    // …while the runtime part of the same file still gets linted.
    let mixed = "fn runtime(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    let diags = lint_source(JOIN_PATH, mixed);
    assert_eq!(diags.len(), 1);
    assert_eq!((diags[0].rule, diags[0].line), ("L001", 1));
}

#[test]
fn malformed_suppressions_become_l000() {
    // Missing reason.
    let no_reason =
        "fn f(x: Option<u32>) -> u32 {\n    // orv-lint: allow(L001)\n    x.unwrap()\n}";
    let diags = lint_source(JOIN_PATH, no_reason);
    assert!(diags.iter().any(|d| d.rule == "L000"), "{diags:?}");
    // Unknown rule id.
    let unknown = "fn f() {\n    // orv-lint: allow(L099) -- nope\n    g();\n}";
    let diags = lint_source(JOIN_PATH, unknown);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule, "L000");
    // A malformed suppression cannot waive the finding it sits on, and
    // L000 itself cannot be suppressed away.
    assert!(lint_source(JOIN_PATH, no_reason)
        .iter()
        .any(|d| d.rule == "L001"));
    // Doc comments that merely *quote* the syntax are inert.
    assert_clean(
        JOIN_PATH,
        "/// Write `// orv-lint: allow(L001)` to waive.\nfn f() {}\n",
    );
}

#[test]
fn trailing_suppression_covers_only_its_own_line() {
    let src = "fn f(x: Option<u32>, y: Option<u32>) -> u32 {\n    let a = x.unwrap(); // orv-lint: allow(L001) -- fixture: this line only\n    let b = y.unwrap();\n    a + b\n}";
    let diags = lint_source(JOIN_PATH, src);
    assert_eq!(diags.len(), 1);
    assert_eq!((diags[0].rule, diags[0].line), ("L001", 3));
}

#[test]
fn json_lines_output_is_stable() {
    let d = Diagnostic {
        file: "crates/x/src/a.rs".into(),
        line: 7,
        rule: "L001",
        message: "`unwrap()` has a \"quote\"".into(),
        evidence: Vec::new(),
    };
    assert_eq!(
        d.to_json(),
        r#"{"rule":"L001","file":"crates/x/src/a.rs","line":7,"message":"`unwrap()` has a \"quote\""}"#
    );
    assert_eq!(
        d.human(),
        "crates/x/src/a.rs:7: L001 `unwrap()` has a \"quote\""
    );
}

#[test]
fn findings_sort_stably_and_drive_exit_code() {
    let src =
        "fn f() {\n    let t = Instant::now();\n    x.unwrap();\n    std::thread::sleep(D);\n}";
    let diags = lint_source(JOIN_PATH, src);
    let mut sorted = diags.clone();
    sorted.sort();
    assert_eq!(diags, sorted, "lint_source must return sorted findings");
    assert_eq!(
        diags.iter().map(|d| (d.line, d.rule)).collect::<Vec<_>>(),
        [(2, "L006"), (3, "L001"), (4, "L002")]
    );
    assert_eq!(exit_code(&diags), 1);
    assert_eq!(exit_code(&[]), 0);
    assert_eq!(RULE_IDS.len(), 11, "L000 + ten substantive rules");
}

// ---------------------------------------------------------------------
// Workspace rules (L008–L010): multi-file fixture sets through the full
// engine.
// ---------------------------------------------------------------------

/// The two-path lock-order cycle of the acceptance criterion: path 1
/// takes `a` then `b` directly; path 2 takes `b` then reaches `a` through
/// a call. The diagnostic must name both acquisition chains.
#[test]
fn l008_two_path_cycle_positive_names_both_chains() {
    let src = "\
fn path_one(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
fn path_two(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    reach_a(a);
    drop(gb);
}
fn reach_a(a: &Mutex<u32>) {
    let ga = a.lock();
    drop(ga);
}
";
    let diags = lint_set(&[(QUERY_PATH, src)]);
    let l008: Vec<_> = diags.iter().filter(|d| d.rule == "L008").collect();
    assert_eq!(l008.len(), 1, "{diags:?}");
    let d = l008[0];
    assert!(d.message.contains("query/a -> query/b -> query/a"), "{d:?}");
    let notes: String = d.evidence.iter().map(|e| format!("{}\n", e.note)).collect();
    assert!(
        notes.contains("[path 1]") && notes.contains("[path 2]"),
        "{notes}"
    );
    assert!(
        notes.contains("path_one") && notes.contains("path_two"),
        "{notes}"
    );
    assert!(notes.contains("reach_a"), "propagated chain named: {notes}");
    // Evidence survives into the JSON schema CI renders annotations from.
    assert!(
        d.to_json().contains(r#""evidence":[{"file":"#),
        "{}",
        d.to_json()
    );
}

#[test]
fn l008_consistent_order_negative_and_suppressed() {
    // Same pair, same order on both paths: no cycle.
    let consistent = "\
fn path_one(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
fn path_two(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
";
    assert!(
        lint_set(&[(QUERY_PATH, consistent)]).is_empty(),
        "consistent order must be clean"
    );
    // A documented suppression at the anchor (path 1's first acquisition)
    // waives the cycle.
    let suppressed = "\
fn path_one(a: &Mutex<u32>, b: &Mutex<u32>) {
    // orv-lint: allow(L008) -- fixture: path_two is init-only, never concurrent with path_one
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
fn path_two(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    let ga = a.lock();
    drop(ga);
    drop(gb);
}
";
    let diags = lint_set(&[(QUERY_PATH, suppressed)]);
    assert!(diags.iter().all(|d| d.rule != "L008"), "{diags:?}");
    // A malformed suppression waives nothing and adds L000.
    let malformed = suppressed.replace(
        "allow(L008) -- fixture: path_two is init-only, never concurrent with path_one",
        "allow(L008)",
    );
    let diags = lint_set(&[(QUERY_PATH, malformed.as_str())]);
    assert!(diags.iter().any(|d| d.rule == "L000"), "{diags:?}");
    assert!(diags.iter().any(|d| d.rule == "L008"), "{diags:?}");
}

#[test]
fn l009_blocking_loop_positive_negative_suppressed() {
    // Condvar wait loop with no cancellation: unkillable.
    let unkillable = "\
fn f(m: &Mutex<bool>, c: &Condvar) {
    let mut g = m.lock();
    loop {
        if *g { return; }
        g = c.wait(g);
    }
}
";
    let diags = lint_set(&[(QUERY_PATH, unkillable)]);
    assert!(diags.iter().any(|d| d.rule == "L009"), "{diags:?}");
    // Polling the token in the loop makes it killable.
    let polite = "\
fn f(m: &Mutex<bool>, c: &Condvar, cancel: &CancelToken) -> Result<()> {
    let mut g = m.lock();
    loop {
        cancel.check()?;
        if *g { return Ok(()); }
        g = c.wait(g);
    }
}
";
    assert!(
        lint_set(&[(QUERY_PATH, polite)]).is_empty(),
        "cancel-polling loop must be clean"
    );
    // A deadline-budget bound counts as a cancellation point too.
    let budgeted = "\
fn f(m: &Mutex<bool>, c: &Condvar, budget: &WaitBudget) {
    let mut g = m.lock();
    loop {
        if budget.expired() { return; }
        let (h, _) = c.wait_timeout(g, budget.slice());
        g = h;
    }
}
";
    assert!(
        lint_set(&[(QUERY_PATH, budgeted)]).is_empty(),
        "budget-bounded loop must be clean"
    );
    let suppressed = "\
fn f(m: &Mutex<bool>, c: &Condvar) {
    let mut g = m.lock();
    // orv-lint: allow(L009) -- fixture: resolver thread always signals before exit
    loop {
        if *g { return; }
        g = c.wait(g);
    }
}
";
    assert!(
        lint_set(&[(QUERY_PATH, suppressed)]).is_empty(),
        "documented suppression waives L009"
    );
}

#[test]
fn l009_blocking_reached_through_the_call_graph() {
    // The loop itself looks innocent; the wait is one call down.
    let src = "\
fn pump(m: &Mutex<bool>, c: &Condvar) {
    loop {
        step_once(m, c);
    }
}
fn step_once(m: &Mutex<bool>, c: &Condvar) {
    let g = m.lock();
    let _ = c.wait(g);
}
";
    let diags = lint_set(&[(QUERY_PATH, src)]);
    let l009: Vec<_> = diags.iter().filter(|d| d.rule == "L009").collect();
    assert_eq!(l009.len(), 1, "{diags:?}");
    assert!(l009[0].message.contains("pump"), "{:?}", l009[0]);
    assert!(
        l009[0].evidence[0].note.contains("step_once"),
        "evidence names the call chain: {:?}",
        l009[0]
    );
    // If the callee observes cancellation, the loop inherits that too.
    let polite = "\
fn pump(m: &Mutex<bool>, c: &Condvar, t: &CancelToken) {
    loop {
        step_once(m, c, t);
    }
}
fn step_once(m: &Mutex<bool>, c: &Condvar, t: &CancelToken) -> Result<()> {
    t.check()?;
    let g = m.lock();
    let _ = c.wait(g);
    Ok(())
}
";
    assert!(
        lint_set(&[(QUERY_PATH, polite)]).is_empty(),
        "cancel-aware callee clears the loop"
    );
    // Outside the concurrency crates the rule does not apply.
    assert!(
        lint_set(&[("crates/layout/src/fixture.rs", src)]).is_empty(),
        "L009 watches join/cluster/query only"
    );
}

/// A miniature names registry for the L010 fixtures.
const NAMES_FIXTURE_PATH: &str = "crates/obs/src/names.rs";

#[test]
fn l010_dead_and_phantom_names_positive() {
    let names = "\
pub const USED: &str = \"used/metric\";
pub const DEAD: &str = \"dead/metric\";
";
    let emitter = "\
fn f(o: &Obs) {
    o.events.emit(names::USED, Vec::new);
    o.events.emit(names::PHANTOM, Vec::new);
}
";
    let diags = lint_set(&[(NAMES_FIXTURE_PATH, names), (QUERY_PATH, emitter)]);
    let l010: Vec<_> = diags.iter().filter(|d| d.rule == "L010").collect();
    assert_eq!(l010.len(), 2, "{diags:?}");
    // Dead constant anchors at its declaration in the registry…
    assert!(
        l010.iter()
            .any(|d| d.file == NAMES_FIXTURE_PATH && d.line == 2 && d.message.contains("DEAD")),
        "{l010:?}"
    );
    // …phantom reference anchors at the use site.
    assert!(
        l010.iter()
            .any(|d| d.file == QUERY_PATH && d.line == 3 && d.message.contains("PHANTOM")),
        "{l010:?}"
    );
}

#[test]
fn l010_negative_builder_coverage_and_suppression() {
    // Fully covered registry: direct emit, builder interpolation, and an
    // aggregate constant (not a name itself, so never "dead").
    let names = "\
pub const USED: &str = \"used/metric\";
pub const PHASE_X: &str = \"x\";
pub const ALL: &[&str] = &[USED, PHASE_X];
pub fn span_x(n: u32) -> String {
    format!(\"grp{n}/{PHASE_X}\")
}
";
    let emitter = "\
fn f(o: &Obs) {
    o.events.emit(names::USED, Vec::new);
    let _s = o.spans.span_with(|| names::span_x(3));
}
";
    assert!(
        lint_set(&[(NAMES_FIXTURE_PATH, names), (QUERY_PATH, emitter)]).is_empty(),
        "builder interpolation covers PHASE_X"
    );
    // Without the registry in the file set, L010 has nothing to check.
    assert!(
        lint_set(&[(QUERY_PATH, emitter)]).is_empty(),
        "no registry, no L010"
    );
    // Test-only usage does not count as coverage…
    let test_only_emit = "\
#[cfg(test)]
mod tests {
    fn t(o: &Obs) {
        o.events.emit(names::DEAD, Vec::new);
    }
}
";
    let names_with_dead = "pub const DEAD: &str = \"dead/metric\";\n";
    let diags = lint_set(&[
        (NAMES_FIXTURE_PATH, names_with_dead),
        (QUERY_PATH, test_only_emit),
    ]);
    assert!(
        diags.iter().any(|d| d.rule == "L010"),
        "test-only emit is still dead: {diags:?}"
    );
    // …and a documented suppression at the declaration waives it.
    let names_suppressed = "\
// orv-lint: allow(L010) -- fixture: reserved for the next ingest PR, dashboard already provisioned
pub const DEAD: &str = \"dead/metric\";
";
    assert!(
        lint_set(&[(NAMES_FIXTURE_PATH, names_suppressed)]).is_empty(),
        "suppression at the declaration waives the dead-name finding"
    );
}
