//! Test-vs-runtime classification.
//!
//! The rules only bite on *runtime* code: anything that executes in a
//! production query path. Test code is exempt wholesale — `unwrap()` in a
//! test is idiomatic, a literal event name in an assertion is fine.
//!
//! Two levels:
//!
//! * **File level** — files under a `tests/`, `examples/` or `benches/`
//!   directory component, and `build.rs`, are entirely test/dev code.
//! * **Item level** — inside runtime files, items annotated `#[test]`,
//!   `#[cfg(test)]` (including `#[cfg(all(test, ...))]`) mark their whole
//!   body (to the matching closing brace, or to `;` for brace-less items)
//!   as test lines. A `#[cfg(test)] mod tests { ... }` therefore exempts
//!   the entire module.

use crate::lexer::{Tok, TokKind};

/// Which source lines of one file are test code.
#[derive(Debug)]
pub struct LineClass {
    /// Whole file is test/dev code (path-based).
    all_test: bool,
    /// Sorted, disjoint `(first_line, last_line)` test ranges.
    ranges: Vec<(usize, usize)>,
}

impl LineClass {
    /// Is `line` (1-based) test code?
    pub fn is_test(&self, line: usize) -> bool {
        self.all_test || self.ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Whether the whole file was classified as test/dev code.
    pub fn is_all_test(&self) -> bool {
        self.all_test
    }
}

/// Does the relative path put the whole file in test territory?
/// `crates/bench` is the measurement harness — a dev tool end to end —
/// so the whole crate counts as non-runtime code.
fn path_is_test(rel_path: &str) -> bool {
    let is = |comp: &str| rel_path.split('/').any(|c| c == comp);
    is("tests")
        || is("examples")
        || is("benches")
        || rel_path.ends_with("build.rs")
        || rel_path.starts_with("crates/bench/")
}

/// Classify every line of a file given its path and token stream.
pub fn classify(rel_path: &str, toks: &[Tok]) -> LineClass {
    if path_is_test(rel_path) {
        return LineClass {
            all_test: true,
            ranges: Vec::new(),
        };
    }
    // Work on a comment-free view: attribute/body scanning must not be
    // confused by `{` or `]` inside comments (strings are already opaque).
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_comment()).collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].kind == TokKind::Punct('#')
            && matches!(code.get(i + 1), Some(t) if t.kind == TokKind::Punct('['))
        {
            let start_line = code[i].line;
            let (attr_end, is_test_attr) = scan_attribute(&code, i + 1);
            if is_test_attr {
                // Skip any further attributes stacked on the same item.
                let mut j = attr_end;
                while j < code.len()
                    && code[j].kind == TokKind::Punct('#')
                    && matches!(code.get(j + 1), Some(t) if t.kind == TokKind::Punct('['))
                {
                    let (next_end, _) = scan_attribute(&code, j + 1);
                    j = next_end;
                }
                let end_line = item_end_line(&code, j);
                ranges.push((start_line, end_line));
                i = j;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    ranges.sort_unstable();
    LineClass {
        all_test: false,
        ranges,
    }
}

/// Starting at the `[` of an attribute, return (index one past the
/// matching `]`, whether the attribute marks test code).
///
/// "Marks test code" means the attribute tokens contain the identifier
/// `test`: that covers `#[test]`, `#[cfg(test)]`, and
/// `#[cfg(all(test, feature = "x"))]`. Identifiers like `tests` do not
/// match, and feature names are string literals so they cannot match.
fn scan_attribute(code: &[&Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut i = open;
    while i < code.len() {
        match &code[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, is_test);
                }
            }
            TokKind::Ident(s) if s == "test" => is_test = true,
            _ => {}
        }
        i += 1;
    }
    (code.len(), is_test)
}

/// From the first token of an item (after its attributes), find the line
/// on which the item ends: the matching `}` of its first brace, or the
/// first `;` at nesting depth zero for brace-less items (`#[cfg(test)]
/// use ...;`).
fn item_end_line(code: &[&Tok], start: usize) -> usize {
    let mut i = start;
    let mut paren_depth = 0usize;
    while i < code.len() {
        match code[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren_depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => {
                paren_depth = paren_depth.saturating_sub(1)
            }
            TokKind::Punct(';') if paren_depth == 0 => return code[i].line,
            TokKind::Punct('{') => {
                // Walk to the matching close brace.
                let mut depth = 0usize;
                while i < code.len() {
                    match code[i].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return code[i].line;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                break;
            }
            _ => {}
        }
        i += 1;
    }
    code.last().map(|t| t.line).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn classed(path: &str, src: &str) -> LineClass {
        classify(path, &scan(src))
    }

    #[test]
    fn test_dirs_are_all_test() {
        for p in [
            "crates/join/tests/prop_schedule.rs",
            "tests/end_to_end.rs",
            "examples/chaos.rs",
            "crates/bench/benches/fig9.rs",
            "crates/bench/src/bin/figures.rs",
            "build.rs",
        ] {
            assert!(classed(p, "fn f() {}").is_all_test(), "{p}");
        }
        assert!(!classed("crates/join/src/grace.rs", "fn f() {}").is_all_test());
        // A crate named e.g. `testsuite` must not match by substring.
        assert!(!classed("crates/testsuite-x/src/lib.rs", "fn f() {}").is_all_test());
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src =
            "fn runtime() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn late() {}\n";
        let c = classed("crates/x/src/lib.rs", src);
        assert!(!c.is_test(1));
        assert!(c.is_test(3)); // the attribute line
        assert!(c.is_test(4));
        assert!(c.is_test(5));
        assert!(c.is_test(6)); // closing brace
        assert!(!c.is_test(7));
    }

    #[test]
    fn test_fn_and_stacked_attributes() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    body();\n}\nfn r() {}\n";
        let c = classed("crates/x/src/lib.rs", src);
        assert!(c.is_test(1));
        assert!(c.is_test(4));
        assert!(!c.is_test(6));
    }

    #[test]
    fn cfg_all_test_matches() {
        let src = "#[cfg(all(test, unix))]\nmod helpers {\n    fn h() {}\n}\n";
        let c = classed("crates/x/src/lib.rs", src);
        assert!(c.is_test(3));
    }

    #[test]
    fn braceless_cfg_test_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn r() {}\n";
        let c = classed("crates/x/src/lib.rs", src);
        assert!(c.is_test(2));
        assert!(!c.is_test(3));
    }

    #[test]
    fn other_attributes_do_not_exempt() {
        let src = "#[derive(Debug)]\nstruct S;\n#[cfg(feature = \"test\")]\nfn f() {}\n";
        let c = classed("crates/x/src/lib.rs", src);
        assert!(!c.is_test(2));
        // `test` here is a *string*, not an identifier.
        assert!(!c.is_test(4));
    }

    #[test]
    fn nested_braces_in_test_mod() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn a() { if x { y() } }\n    fn b() {}\n}\nfn r() {}\n";
        let c = classed("crates/x/src/lib.rs", src);
        assert!(c.is_test(4));
        assert!(c.is_test(5));
        assert!(!c.is_test(6));
    }
}
