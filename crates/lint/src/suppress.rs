//! Per-site suppression comments.
//!
//! Syntax (anywhere a `//` comment can appear):
//!
//! ```text
//! // orv-lint: allow(L002) -- pacing primitive: this IS the slice sleep
//! // orv-lint: allow(L001, L006) -- calibration measures real hardware
//! ```
//!
//! A suppression applies to findings on **its own line** (trailing
//! comment) and on the **next source line** (comment-above style). The
//! reason after `--` is mandatory: a suppression without one is itself
//! reported (rule `L000`), so every waiver in the tree carries its
//! justification next to the code it excuses.

use crate::lexer::{Tok, TokKind};
use crate::rules::RULE_IDS;

/// One parsed `orv-lint: allow(...)` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// Rule ids this comment waives (upper-cased, e.g. `L001`).
    pub rules: Vec<String>,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Trailing comments (code before them on the same line) waive only
    /// that line; standalone comments waive the line below.
    pub trailing: bool,
}

/// A malformed suppression comment, reported as rule `L000`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BadSuppression {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// All suppressions of one file plus the malformed ones.
#[derive(Debug, Default)]
pub struct Suppressions {
    entries: Vec<Suppression>,
    /// Malformed comments, surfaced by the engine as L000 findings.
    pub bad: Vec<BadSuppression>,
}

impl Suppressions {
    /// Is `rule` waived at `line`? A trailing suppression covers its own
    /// line; a standalone one covers its own line and the line below.
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.entries.iter().any(|s| {
            let in_range = s.line == line || (!s.trailing && s.line + 1 == line);
            in_range && s.rules.iter().any(|r| r == rule)
        })
    }

    /// Number of well-formed suppressions (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no well-formed suppressions were found.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

const MARKER: &str = "orv-lint:";

/// Collect suppression comments from a token stream.
pub fn collect(toks: &[Tok]) -> Suppressions {
    let mut out = Suppressions::default();
    for (i, t) in toks.iter().enumerate() {
        let TokKind::LineComment(text) = &t.kind else {
            continue;
        };
        // Doc comments (`///`, `//!`) are documentation — they may quote
        // the suppression syntax without being directives.
        if text.starts_with('/') || text.starts_with('!') {
            continue;
        }
        let Some(idx) = text.find(MARKER) else {
            continue;
        };
        // Trailing iff a non-comment token precedes it on the same line.
        let trailing = toks[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.kind.is_comment());
        let directive = text[idx + MARKER.len()..].trim();
        match parse_directive(directive) {
            Ok(rules) => out.entries.push(Suppression {
                rules,
                line: t.line,
                trailing,
            }),
            Err(problem) => out.bad.push(BadSuppression {
                line: t.line,
                problem,
            }),
        }
    }
    out
}

/// Parse `allow(L001, L002) -- reason` (the part after `orv-lint:`).
fn parse_directive(s: &str) -> Result<Vec<String>, String> {
    let Some(rest) = s.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(<rules>) -- <reason>`, found `{s}`"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("missing `(` after `allow`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("missing `)` in allow(...)".into());
    };
    let (list, tail) = rest.split_at(close);
    let tail = tail[1..].trim(); // drop `)`
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("missing `-- <reason>`: every suppression must say why".into());
    };
    if reason.trim().is_empty() {
        return Err("empty reason after `--`".into());
    }
    let mut rules = Vec::new();
    for part in list.split(',') {
        let id = part.trim().to_ascii_uppercase();
        if id.is_empty() {
            return Err("empty rule id in allow(...)".into());
        }
        if !RULE_IDS.contains(&id.as_str()) {
            return Err(format!(
                "unknown rule `{id}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
        rules.push(id);
    }
    if rules.is_empty() {
        return Err("allow(...) names no rules".into());
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn parse(src: &str) -> Suppressions {
        collect(&scan(src))
    }

    #[test]
    fn trailing_and_above_both_apply() {
        let s = parse(
            "// orv-lint: allow(L001) -- provable\nx.unwrap();\ny.unwrap(); // orv-lint: allow(L001) -- also provable\n",
        );
        assert!(s.allows("L001", 1));
        assert!(s.allows("L001", 2)); // line under the comment
        assert!(s.allows("L001", 3)); // trailing
        assert!(!s.allows("L001", 4));
        assert!(!s.allows("L002", 2));
        assert!(s.bad.is_empty());
    }

    #[test]
    fn multiple_rules_one_comment() {
        let s = parse("// orv-lint: allow(L001, l006) -- calibration loop\n");
        assert!(s.allows("L001", 2));
        assert!(s.allows("L006", 2)); // ids are case-insensitive
    }

    #[test]
    fn missing_reason_is_malformed() {
        let s = parse("// orv-lint: allow(L001)\n");
        assert!(s.is_empty());
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].problem.contains("reason"));
        let s = parse("// orv-lint: allow(L001) -- \n");
        assert_eq!(s.bad.len(), 1, "blank reason must not count");
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let s = parse("// orv-lint: allow(L999) -- because\n");
        assert!(s.is_empty());
        assert!(s.bad[0].problem.contains("L999"));
    }

    #[test]
    fn garbage_directives_are_malformed() {
        for bad in [
            "// orv-lint: deny(L001) -- x",
            "// orv-lint: allow L001 -- x",
            "// orv-lint: allow() -- x",
            "// orv-lint: allow(L001 -- x",
        ] {
            let s = parse(bad);
            assert_eq!(s.bad.len(), 1, "{bad}");
        }
    }

    #[test]
    fn ordinary_comments_ignored() {
        let s = parse("// just a note about orv lint things\nx();\n");
        assert!(s.is_empty());
        assert!(s.bad.is_empty());
    }

    #[test]
    fn doc_comments_quoting_syntax_are_inert() {
        for doc in [
            "/// Quote: `// orv-lint: allow(L001)` has no reason.\n",
            "//! // orv-lint: allow(L999) -- docs may show anything\n",
        ] {
            let s = parse(doc);
            assert!(s.is_empty(), "{doc}");
            assert!(s.bad.is_empty(), "{doc}");
        }
    }

    #[test]
    fn suppression_inside_string_is_inert() {
        let s = parse(r#"let x = "// orv-lint: allow(L001) -- nope";"#);
        assert!(s.is_empty());
    }
}
