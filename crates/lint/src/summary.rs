//! Per-function summaries: what each function acquires, blocks on,
//! polls, and calls.
//!
//! This is the middle layer of the structural engine: [`crate::items`]
//! finds the functions, this pass reduces each body to the facts the
//! whole-workspace rules need, and [`crate::callgraph`] propagates those
//! facts along the (approximate) call graph. Facts collected per
//! function:
//!
//! * **Lock acquisitions** — every zero-argument `.lock()` / `.read()` /
//!   `.write()` call, keyed by `crate/receiver` (e.g. `query/catalog`).
//!   Receiver extraction walks back over `?` and balanced `(..)`/`[..]`
//!   groups, so `relock(self.queue.lock())` keys as `query/queue`.
//! * **Held edges** — lock B acquired while a `let`-bound guard on lock A
//!   is live (the same liveness heuristic as rule L003: guards die at
//!   `drop(name)` or scope close; chained temporaries are not guards).
//! * **Held calls** — a function call made while a guard is live; the
//!   call graph turns these into propagated lock-order edges.
//! * **Blocking waits** — `recv` / `wait` / `wait_timeout` / `park` /
//!   `sleep` call sites.
//! * **Cancellation markers** — identifiers that show the surrounding
//!   loop observes a `CancelToken`, a deadline, or a shutdown flag.
//! * **Loops** — header line plus the body's blocking/cancel/call facts,
//!   for rule L009.

use crate::items::{self, FnItem};
use crate::lexer::{Tok, TokKind};

/// One lock acquisition site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockSite {
    /// `crate/receiver` key, e.g. `query/catalog`. Two locks reached
    /// through same-named receivers in the same crate alias to one key —
    /// a documented imprecision (DESIGN.md §15).
    pub key: String,
    /// 1-based acquisition line.
    pub line: usize,
}

/// Lock `to` acquired while a guard on `from` was live, in one function.
#[derive(Clone, Debug)]
pub struct HeldEdge {
    pub from: LockSite,
    pub to: LockSite,
}

/// A call made while a guard was live.
#[derive(Clone, Debug)]
pub struct HeldCall {
    pub held: LockSite,
    pub callee: String,
    pub line: usize,
}

/// One call site (by bare callee name).
#[derive(Clone, Debug)]
pub struct CallSite {
    pub callee: String,
    pub line: usize,
}

/// One blocking-wait site.
#[derive(Clone, Debug)]
pub struct BlockSite {
    /// The blocking callee (`recv`, `wait`, ...).
    pub what: String,
    pub line: usize,
}

/// One loop inside a function, with the facts L009 needs.
#[derive(Clone, Debug)]
pub struct LoopSummary {
    /// 1-based line of the `loop`/`while`/`for` keyword.
    pub line: usize,
    /// Token-index range (keyword ..= closing brace) — used to detect
    /// loop nesting.
    pub range: (usize, usize),
    /// Blocking waits directly inside the loop (header included).
    pub blocking: Vec<BlockSite>,
    /// Does the loop directly mention a cancellation/deadline marker?
    pub cancel: bool,
    /// Calls made inside the loop.
    pub calls: Vec<CallSite>,
}

/// Everything the workspace rules need to know about one function.
#[derive(Clone, Debug)]
pub struct FnSummary {
    /// Workspace-relative file path.
    pub file: String,
    /// Bare name (call-graph key) and human label.
    pub name: String,
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub acquires: Vec<LockSite>,
    pub held_edges: Vec<HeldEdge>,
    pub held_calls: Vec<HeldCall>,
    pub calls: Vec<CallSite>,
    pub blocking: Vec<BlockSite>,
    /// Any direct cancellation/deadline marker in the body.
    pub cancel: bool,
    pub loops: Vec<LoopSummary>,
}

/// Methods whose zero-argument call acquires a lock guard.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Callees that block the calling thread until an external event.
const BLOCKING: &[&str] = &["recv", "wait", "wait_timeout", "park", "sleep"];

/// Identifiers that show cancellation/deadline/shutdown is observed.
/// `sleep` is both: the only sanctioned `.sleep` is `CancelToken::sleep`
/// (L002), which returns `Err(Cancelled)` between 250 ms slices.
const CANCEL_MARKERS: &[&str] = &[
    "check",
    "is_cancelled",
    "sleep",
    "wait_cancellable",
    "run_cancellable",
    "expired",
    "remaining",
    "deadline_exceeded",
    "attempts_exhausted",
    "hard_deadline",
    "shutdown",
];

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "in", "as", "move", "else", "let",
];

/// The lock-key crate prefix for a workspace-relative path:
/// `crates/query/src/…` → `query`, the root `src/…` → `orv`.
pub fn crate_key(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("crates"),
        Some("src") => "orv",
        Some(first) => first,
        None => "?",
    }
}

/// Summarize every function of one file. `code` must be the comment-free
/// token view; `is_test_line` filters out test items (their panics and
/// busy-waits are idiomatic and never run in a serving path).
pub fn summarize_file(
    rel_path: &str,
    code: &[&Tok],
    is_test_line: impl Fn(usize) -> bool,
) -> Vec<FnSummary> {
    let ckey = crate_key(rel_path);
    items::parse_fns(code)
        .into_iter()
        .filter(|f| !is_test_line(f.line))
        .map(|f| summarize_fn(rel_path, ckey, &f, code))
        .collect()
}

fn ident_at(code: &[&Tok], i: usize, name: &str) -> bool {
    code.get(i).is_some_and(|t| t.kind.ident() == Some(name))
}

fn punct_at(code: &[&Tok], i: usize, c: char) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokKind::Punct(c))
}

fn path_sep_at(code: &[&Tok], i: usize) -> bool {
    punct_at(code, i, ':') && punct_at(code, i + 1, ':')
}

/// Is token `i` a `.` starting a zero-argument lock/read/write call?
/// Returns the lock site on match. Zero arguments is what separates
/// `catalog.read()` (RwLock) from `file.read(&mut buf)` (I/O).
fn lock_acquisition(code: &[&Tok], ckey: &str, i: usize) -> Option<LockSite> {
    if !punct_at(code, i, '.') || !punct_at(code, i + 2, '(') || !punct_at(code, i + 3, ')') {
        return None;
    }
    let callee = code.get(i + 1)?.kind.ident()?;
    if !LOCK_METHODS.contains(&callee) {
        return None;
    }
    let recv = receiver_name(code, i).unwrap_or("anon");
    Some(LockSite {
        key: format!("{ckey}/{recv}"),
        line: code[i].line,
    })
}

/// The receiver identifier of the method call whose `.` sits at `dot`:
/// walk left over `?` and balanced `(..)` / `[..]` groups, then take the
/// identifier. `self.cfg.queue.lock()` → `queue`; `store(n)?.lock()` →
/// `store`; `shards[i].lock()` → `shards`.
fn receiver_name<'a>(code: &'a [&Tok], dot: usize) -> Option<&'a str> {
    let mut j = dot.checked_sub(1)?;
    loop {
        match &code.get(j)?.kind {
            TokKind::Punct('?') => j = j.checked_sub(1)?,
            TokKind::Punct(close @ (')' | ']')) => {
                let open = if *close == ')' { '(' } else { '[' };
                let mut depth = 0usize;
                loop {
                    match &code.get(j)?.kind {
                        TokKind::Punct(c) if *c == *close => depth += 1,
                        TokKind::Punct(c) if *c == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
            }
            TokKind::Ident(s) => return Some(s),
            _ => return None,
        }
    }
}

/// Is `i` a call site? Returns the callee name: an identifier directly
/// followed by `(` (methods and free calls alike; macros have a `!`
/// between and never match).
fn call_at<'a>(code: &'a [&Tok], i: usize) -> Option<&'a str> {
    let name = code.get(i)?.kind.ident()?;
    if NON_CALL_KEYWORDS.contains(&name) || !punct_at(code, i + 1, '(') {
        return None;
    }
    Some(name)
}

/// Is `i` a blocking-wait site? Either `.recv(` / `.wait(` /… method
/// forms or the `thread::park` / `thread::sleep` path forms.
fn blocking_at<'a>(code: &'a [&Tok], i: usize) -> Option<&'a str> {
    let name = code.get(i)?.kind.ident()?;
    if !BLOCKING.contains(&name) || !punct_at(code, i + 1, '(') {
        return None;
    }
    let method = i > 0 && punct_at(code, i - 1, '.');
    let path = i >= 2 && path_sep_at(code, i - 2) && ident_at(code, i - 3, "thread");
    (method || path).then_some(name)
}

fn summarize_fn(rel_path: &str, ckey: &str, item: &FnItem, code: &[&Tok]) -> FnSummary {
    let (open, close) = item.body;
    let body = open + 1..close;

    // Pass A — flat facts: calls, blocking waits, cancel markers, loops.
    let mut calls = Vec::new();
    let mut blocking = Vec::new();
    let mut cancel = false;
    let mut loops: Vec<LoopSummary> = Vec::new();
    for i in body.clone() {
        if let Some(callee) = call_at(code, i) {
            calls.push(CallSite {
                callee: callee.to_string(),
                line: code[i].line,
            });
        }
        if let Some(what) = blocking_at(code, i) {
            blocking.push(BlockSite {
                what: what.to_string(),
                line: code[i].line,
            });
        }
        if let Some(id) = code[i].kind.ident() {
            if CANCEL_MARKERS.contains(&id) {
                cancel = true;
            }
            if matches!(id, "loop" | "while" | "for") {
                // `for` also appears in `impl Trait for T`; inside a fn
                // body that cannot occur. Find the body brace.
                if let Some(lopen) = (i + 1..close).find(|&j| punct_at(code, j, '{')) {
                    // Skip `for` used as a loop only when a `{` follows
                    // before any `;` (defends against stray tokens).
                    if (i + 1..lopen).any(|j| punct_at(code, j, ';')) {
                        continue;
                    }
                    let lclose = items::match_brace(code, lopen);
                    loops.push(LoopSummary {
                        line: code[i].line,
                        range: (i, lclose),
                        blocking: Vec::new(),
                        cancel: false,
                        calls: Vec::new(),
                    });
                }
            }
        }
    }
    for lp in &mut loops {
        let (s, e) = lp.range;
        for i in s..=e.min(close) {
            if let Some(what) = blocking_at(code, i) {
                lp.blocking.push(BlockSite {
                    what: what.to_string(),
                    line: code[i].line,
                });
            }
            if let Some(callee) = call_at(code, i) {
                lp.calls.push(CallSite {
                    callee: callee.to_string(),
                    line: code[i].line,
                });
            }
            if code[i]
                .kind
                .ident()
                .is_some_and(|id| CANCEL_MARKERS.contains(&id))
            {
                lp.cancel = true;
            }
        }
    }

    // Pass B — guard liveness: acquisitions, held edges, held calls.
    struct Guard {
        name: String,
        site: LockSite,
        depth: usize,
    }
    let mut acquires = Vec::new();
    let mut held_edges = Vec::new();
    let mut held_calls = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;

    // Record one acquisition: remember it and edge it from live guards.
    let note_acquire = |site: &LockSite,
                        guards: &[Guard],
                        acquires: &mut Vec<LockSite>,
                        held_edges: &mut Vec<HeldEdge>| {
        acquires.push(site.clone());
        for g in guards {
            if g.site.key != site.key || g.site.line != site.line {
                held_edges.push(HeldEdge {
                    from: g.site.clone(),
                    to: site.clone(),
                });
            }
        }
    };

    let mut i = open + 1;
    while i < close {
        match &code[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokKind::Ident(kw) if kw == "let" => {
                // Brace-free statement lookahead (the L003 heuristic):
                // find the bound name and any lock acquisitions inside.
                let mut j = i + 1;
                if ident_at(code, j, "mut") {
                    j += 1;
                }
                let bound = code.get(j).and_then(|t| t.kind.ident()).map(String::from);
                let mut k = i + 1;
                let mut binds: Option<LockSite> = None;
                while k < close {
                    match code[k].kind {
                        TokKind::Punct(';') | TokKind::Punct('{') => break,
                        _ => {}
                    }
                    if let Some(site) = lock_acquisition(code, ckey, k) {
                        note_acquire(&site, &guards, &mut acquires, &mut held_edges);
                        // The acquisition binds a guard only when the
                        // rest of the statement is pure unwrapping
                        // (`)` / `?`): `relock(self.q.lock());` binds,
                        // while chained temporaries like
                        // `.read().get(..)` or `.lock().append(..)?`
                        // die inside their own statement.
                        let tail_unwraps_only = (k + 4..close)
                            .take_while(|&t| !punct_at(code, t, ';'))
                            .all(|t| {
                                matches!(code[t].kind, TokKind::Punct(')') | TokKind::Punct('?'))
                            });
                        if binds.is_none() && tail_unwraps_only {
                            binds = Some(site);
                        }
                    } else if let Some(callee) = call_at(code, k) {
                        for g in &guards {
                            held_calls.push(HeldCall {
                                held: g.site.clone(),
                                callee: callee.to_string(),
                                line: code[k].line,
                            });
                        }
                    }
                    k += 1;
                }
                if let (Some(site), Some(name), true) = (binds, bound, punct_at(code, k, ';')) {
                    guards.push(Guard { name, site, depth });
                }
                i = k;
                continue;
            }
            TokKind::Ident(kw) if kw == "drop" && punct_at(code, i + 1, '(') => {
                if let Some(TokKind::Ident(n)) = code.get(i + 2).map(|t| &t.kind) {
                    guards.retain(|g| &g.name != n);
                }
            }
            _ => {}
        }
        if let Some(site) = lock_acquisition(code, ckey, i) {
            note_acquire(&site, &guards, &mut acquires, &mut held_edges);
        } else if let Some(callee) = call_at(code, i) {
            for g in &guards {
                held_calls.push(HeldCall {
                    held: g.site.clone(),
                    callee: callee.to_string(),
                    line: code[i].line,
                });
            }
        }
        i += 1;
    }

    FnSummary {
        file: rel_path.to_string(),
        name: item.name.clone(),
        qual: item.qual.clone(),
        line: item.line,
        acquires,
        held_edges,
        held_calls,
        calls,
        blocking,
        cancel,
        loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn summaries(path: &str, src: &str) -> Vec<FnSummary> {
        let toks = scan(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_comment()).collect();
        summarize_file(path, &code, |_| false)
    }

    #[test]
    fn crate_keys() {
        assert_eq!(crate_key("crates/query/src/service.rs"), "query");
        assert_eq!(crate_key("src/obs_report.rs"), "orv");
    }

    #[test]
    fn held_edge_between_two_locks() {
        let s = &summaries(
            "crates/query/src/x.rs",
            "fn f(&self) {\n    let g = self.catalog.read();\n    let h = self.shards.lock();\n    drop(h);\n    drop(g);\n}",
        )[0];
        assert_eq!(s.acquires.len(), 2);
        assert_eq!(s.held_edges.len(), 1);
        assert_eq!(s.held_edges[0].from.key, "query/catalog");
        assert_eq!(s.held_edges[0].to.key, "query/shards");
    }

    #[test]
    fn relock_wrapped_guard_keys_by_receiver() {
        let s = &summaries(
            "crates/query/src/x.rs",
            "fn f(&self) {\n    let mut queue = relock(self.queue.lock());\n    queue.pop();\n}",
        )[0];
        assert_eq!(s.acquires[0].key, "query/queue");
        // The relock() call itself is made before the guard binds: no
        // held-call on the guard's own binding statement.
        assert!(s.held_calls.iter().all(|c| c.callee != "relock"));
    }

    #[test]
    fn chained_temporary_acquires_but_does_not_guard() {
        let s = &summaries(
            "crates/query/src/x.rs",
            "fn f(&self) {\n    let v = self.catalog.read().get(n).cloned();\n    let w = self.other.lock();\n    drop(w);\n    let _ = v;\n}",
        )[0];
        // Both acquisitions recorded, but the chained read guard died in
        // its own statement: no held edge catalog → other.
        assert_eq!(s.acquires.len(), 2);
        assert!(s.held_edges.is_empty(), "{:?}", s.held_edges);
    }

    #[test]
    fn scope_close_and_drop_release_guards() {
        let s = &summaries(
            "crates/query/src/x.rs",
            "fn f(&self) {\n    {\n        let g = self.a.lock();\n        g.touch();\n    }\n    let h = self.b.lock();\n    drop(h);\n    let k = self.c.lock();\n}",
        )[0];
        // a died at scope close, b at drop: only c is ever acquired
        // under another guard — and it is not, so no edges at all.
        assert!(s.held_edges.is_empty(), "{:?}", s.held_edges);
    }

    #[test]
    fn held_call_recorded() {
        let s = &summaries(
            "crates/query/src/x.rs",
            "fn f(&self) {\n    let g = self.state.lock();\n    self.publish(g.value);\n}",
        )[0];
        assert!(s
            .held_calls
            .iter()
            .any(|c| c.callee == "publish" && c.held.key == "query/state"));
    }

    #[test]
    fn loop_facts() {
        let s = &summaries(
            "crates/query/src/x.rs",
            "fn f(&self, rx: &Receiver<u32>, cancel: &CancelToken) {\n    loop {\n        cancel.check()?;\n        let _ = rx.recv();\n    }\n    while ready() {\n        step();\n    }\n}",
        )[0];
        assert_eq!(s.loops.len(), 2);
        assert_eq!(s.loops[0].blocking[0].what, "recv");
        assert!(s.loops[0].cancel);
        assert!(s.loops[1].blocking.is_empty());
        assert!(!s.loops[1].cancel);
        assert!(s.loops[1].calls.iter().any(|c| c.callee == "step"));
    }

    #[test]
    fn blocking_forms() {
        let s = &summaries(
            "crates/query/src/x.rs",
            "fn f() {\n    std::thread::park();\n    cond.wait(g);\n    rx.recv_timeout(d);\n}",
        )[0];
        let whats: Vec<_> = s.blocking.iter().map(|b| b.what.as_str()).collect();
        assert!(whats.contains(&"park"));
        assert!(whats.contains(&"wait"));
        // recv_timeout is its own identifier — not the unbounded recv.
        assert!(!whats.contains(&"recv"));
    }

    #[test]
    fn test_items_are_skipped() {
        let toks = scan("fn runtime() {}\nfn testish() { x.lock(); }\n");
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_comment()).collect();
        let sums = summarize_file("crates/query/src/x.rs", &code, |line| line == 2);
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].name, "runtime");
    }
}
