//! Brace-tree item parsing: functions (with impl/mod context) and their
//! body token spans.
//!
//! The token rules of PR 4 ran on a flat stream; the structural rules
//! (L008–L010) need to know *which function* a token belongs to so that
//! per-function summaries can be propagated through the call graph. This
//! parser is deliberately shallow — it does not understand expressions,
//! only the item skeleton: `mod`/`impl` blocks contribute a context name,
//! `fn` items contribute a named body span. Everything inside a body is
//! left to the summary pass.
//!
//! Known approximations (documented in `DESIGN.md` §15):
//!
//! * The body of a `fn` is taken to start at the first `{` after its
//!   name. Const-generic braces in signatures (`Foo<{N + 1}>`) would
//!   confuse it; the workspace has none.
//! * `impl Trait for Type` records `Type`; a bare `impl Type` records
//!   `Type`. Generic parameters are skipped.
//! * Trait method *declarations* (`fn f(&self);`) have no body and
//!   produce no item.

use crate::lexer::{Tok, TokKind};

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name — the call-graph resolution key.
    pub name: String,
    /// Human label with impl/mod context, e.g. `QueryTicket::wait`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range `[open, close]` of the body braces, inclusive,
    /// into the comment-free token slice handed to [`parse_fns`].
    pub body: (usize, usize),
}

/// Parse every `fn` item (with its impl/mod context) out of a
/// comment-free token slice.
pub fn parse_fns(code: &[&Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    // (context name, brace depth at which it was entered)
    let mut ctx: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < code.len() {
        match &code[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                ctx.retain(|&(_, d)| d <= depth);
            }
            TokKind::Ident(kw) if kw == "mod" => {
                // `mod name {` opens a context; `mod name;` declares only.
                if let (Some(TokKind::Ident(name)), true) = (
                    code.get(i + 1).map(|t| &t.kind),
                    matches!(code.get(i + 2), Some(t) if t.kind == TokKind::Punct('{')),
                ) {
                    ctx.push((name.clone(), depth + 1));
                    depth += 1;
                    i += 3;
                    continue;
                }
            }
            TokKind::Ident(kw) if kw == "impl" => {
                if let Some((name, open)) = impl_context(code, i) {
                    ctx.push((name, depth + 1));
                    depth += 1;
                    i = open + 1;
                    continue;
                }
            }
            TokKind::Ident(kw) if kw == "fn" => {
                // `fn(` is a function-pointer type, not an item.
                if let Some(TokKind::Ident(name)) = code.get(i + 1).map(|t| &t.kind) {
                    let line = code[i].line;
                    // Signature runs to the first `{` (body) or `;`
                    // (trait declaration, no body).
                    let mut j = i + 2;
                    let mut open = None;
                    while j < code.len() {
                        match code[j].kind {
                            TokKind::Punct('{') => {
                                open = Some(j);
                                break;
                            }
                            TokKind::Punct(';') => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(open) = open {
                        let close = match_brace(code, open);
                        let qual = match ctx.last() {
                            Some((c, _)) => format!("{c}::{name}"),
                            None => name.clone(),
                        };
                        out.push(FnItem {
                            name: name.clone(),
                            qual,
                            line,
                            body: (open, close),
                        });
                        // Keep scanning *inside* the body: depth tracking
                        // continues naturally and nested items are found.
                        i = open;
                        continue;
                    }
                    i = j;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// For an `impl` at `i`, return (type name, index of the opening `{`).
/// Handles `impl<T> Type<T>`, `impl Trait for Type`, `impl a::b::Type`.
fn impl_context(code: &[&Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip the generic parameter list right after `impl`.
    if matches!(code.get(j), Some(t) if t.kind == TokKind::Punct('<')) {
        let mut angle = 0usize;
        while j < code.len() {
            match code[j].kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Collect path segments up to `{`; the name is the last segment seen
    // before the `{`, restarting at `for` (`impl Trait for Type`) and
    // freezing at `where` (bound types are not the impl target).
    let mut name: Option<String> = None;
    let mut frozen = false;
    while j < code.len() {
        match &code[j].kind {
            TokKind::Punct('{') => {
                let name = name?;
                return Some((name, j));
            }
            TokKind::Punct(';') => return None, // `impl Type;` — not real Rust, bail
            TokKind::Punct('<') => {
                // Skip a generic argument list (`Holder<'a, T>`): its
                // parameters must not overwrite the path segment.
                let mut angle = 0usize;
                while j < code.len() {
                    match code[j].kind {
                        TokKind::Punct('<') => angle += 1,
                        TokKind::Punct('>') => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            TokKind::Ident(s) if s == "for" => name = None,
            TokKind::Ident(s) if s == "where" => frozen = true,
            TokKind::Ident(s) if !frozen && !["dyn", "mut"].contains(&s.as_str()) => {
                name = Some(s.clone());
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (saturating at EOF).
pub fn match_brace(code: &[&Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        match code[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn fns(src: &str) -> Vec<FnItem> {
        let toks = scan(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_comment()).collect();
        parse_fns(&code)
    }

    #[test]
    fn free_fn_and_impl_method() {
        let items =
            fns("fn free() { body(); }\nimpl Widget {\n    fn method(&self) -> u32 { 1 }\n}\n");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].qual, "free");
        assert_eq!(items[1].qual, "Widget::method");
        assert_eq!(items[1].line, 3);
    }

    #[test]
    fn trait_impl_records_the_type() {
        let items = fns("impl fmt::Display for TokKind {\n    fn fmt(&self) -> R { x }\n}\n");
        assert_eq!(items[0].qual, "TokKind::fmt");
    }

    #[test]
    fn generic_impl_skips_parameters() {
        let items =
            fns("impl<'a, T: Clone> Holder<'a, T> {\n    fn get(&self) -> &T { &self.0 }\n}\n");
        assert_eq!(items[0].qual, "Holder::get");
    }

    #[test]
    fn mod_context_and_nesting() {
        let items = fns(
            "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\n",
        );
        let quals: Vec<_> = items.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["inner::deep", "outer::shallow"]);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let items =
            fns("trait T {\n    fn decl(&self);\n    fn with_default(&self) -> u32 { 0 }\n}\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "with_default");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let items = fns("fn takes(cb: fn(u32) -> u32) { cb(1); }\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "takes");
    }

    #[test]
    fn body_span_matches_braces() {
        let src = "fn f() { if x { y() } }";
        let toks = scan(src);
        let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_comment()).collect();
        let items = parse_fns(&code);
        let (open, close) = items[0].body;
        assert_eq!(code[open].kind, TokKind::Punct('{'));
        assert_eq!(code[close].kind, TokKind::Punct('}'));
        assert_eq!(close, code.len() - 1);
    }
}
