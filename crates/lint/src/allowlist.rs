//! The consolidated per-rule allow-lists.
//!
//! Every rule-level exemption in the linter lives here, in one place,
//! with the reason it exists. These are *structural* exemptions — "this
//! file is the sanctioned implementation of the thing the rule bans" —
//! as opposed to per-site `// orv-lint: allow(...)` suppressions, which
//! carry their reason inline.
//!
//! The unit test at the bottom asserts every listed path exists in the
//! workspace: when a sanctioned file is renamed or deleted, the stale
//! entry fails the build instead of silently widening the exemption to
//! a file that may someday reappear under that name.

/// Files allowed to call `std::thread::sleep` / `thread::park` directly:
/// the cancellable slice primitive itself. Everything else must sleep via
/// `CancelToken::sleep` / `Throttle::consume_cancellable`, which slice at
/// 250 ms and observe cancellation between slices.
pub const L002_ALLOWED: &[&str] = &["crates/cluster/src/cancel.rs"];

/// Files allowed to open files for writing: the crash-safe catalog
/// writer, cluster scratch (running CRC maintained on append), and the
/// observability sinks. Everything else must go through them so every
/// durable byte is covered by a checksum.
pub const L004_ALLOWED: &[&str] = &[
    "crates/metadata/src/persist.rs",
    "crates/cluster/src/runtime.rs",
];
pub const L004_ALLOWED_DIRS: &[&str] = &["crates/obs/src/"];

/// The registry module itself defines the canonical strings.
pub const L005_ALLOWED: &[&str] = &["crates/obs/src/names.rs"];

/// The sanctioned clock users: observability timing, Throttle pacing,
/// and CancelToken deadlines.
pub const L006_ALLOWED: &[&str] = &[
    "crates/cluster/src/runtime.rs",
    "crates/cluster/src/cancel.rs",
];
pub const L006_ALLOWED_DIRS: &[&str] = &["crates/obs/src/"];

/// The files implementing the sanctioned retry machinery — their internal
/// loops *are* the policy.
pub const L007_ALLOWED: &[&str] = &[
    "crates/cluster/src/fault.rs",
    "crates/cluster/src/retry_budget.rs",
];

/// Every file-path allowlist, labelled, for the existence test and for
/// `orv-lint --allowlists` style introspection.
pub const ALL_FILE_LISTS: &[(&str, &[&str])] = &[
    ("L002_ALLOWED", L002_ALLOWED),
    ("L004_ALLOWED", L004_ALLOWED),
    ("L005_ALLOWED", L005_ALLOWED),
    ("L006_ALLOWED", L006_ALLOWED),
    ("L007_ALLOWED", L007_ALLOWED),
];

/// Every directory-prefix allowlist, labelled.
pub const ALL_DIR_LISTS: &[(&str, &[&str])] = &[
    ("L004_ALLOWED_DIRS", L004_ALLOWED_DIRS),
    ("L006_ALLOWED_DIRS", L006_ALLOWED_DIRS),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn workspace_root() -> std::path::PathBuf {
        // crates/lint → workspace root is two levels up.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root resolves")
    }

    #[test]
    fn every_allowlisted_file_exists() {
        let root = workspace_root();
        for (list, paths) in ALL_FILE_LISTS {
            for p in *paths {
                assert!(
                    root.join(p).is_file(),
                    "{list} entry `{p}` does not exist — remove the stale exemption"
                );
            }
        }
    }

    #[test]
    fn every_allowlisted_dir_exists() {
        let root = workspace_root();
        for (list, dirs) in ALL_DIR_LISTS {
            for d in *dirs {
                assert!(
                    root.join(d).is_dir(),
                    "{list} entry `{d}` does not exist — remove the stale exemption"
                );
            }
        }
    }

    #[test]
    fn allowlists_have_no_duplicates() {
        for (list, paths) in ALL_FILE_LISTS.iter().chain(ALL_DIR_LISTS) {
            let mut sorted: Vec<_> = paths.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                paths.len(),
                "{list} contains a duplicate entry"
            );
        }
    }
}
