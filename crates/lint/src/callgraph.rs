//! Approximate intra-workspace call graph and reachability analysis.
//!
//! Calls are resolved **by bare callee name**: a call site `foo(..)` or
//! `x.foo(..)` resolves to *every* workspace function named `foo`. There
//! is no type information, so this over-approximates (a `.len()` call
//! would resolve to every `len` in the workspace) — which is the safe
//! direction for L008/L009: more resolution means more propagated facts,
//! never fewer. The known imprecision and its mitigations (crate-scoped
//! lock keys, no propagated self-edges) are documented in DESIGN.md §15.
//!
//! Three facts propagate through the graph to a fixed point:
//!
//! * `locks_within(f)` — lock keys acquired by `f` or anything it
//!   (transitively) calls, each with a witness chain for diagnostics.
//! * `blocks_within(f)` — does `f` (transitively) reach a blocking wait?
//! * `cancels_within(f)` — does `f` (transitively) observe cancellation?
//!
//! The lock-order graph for L008 is then: a **direct edge** A→B for each
//! in-function "B acquired while a guard on A is live", plus a
//! **propagated edge** A→B for each "call made while a guard on A is
//! live" whose callee has B ∈ `locks_within`. Any cycle is a potential
//! deadlock.

use crate::summary::FnSummary;
use std::collections::{BTreeMap, BTreeSet};

/// Longest witness chain kept during propagation. Chains only shrink
/// once a key is known, so this also bounds the fixed point.
const MAX_CHAIN: usize = 6;

/// Callee names never resolved through the graph: the std trait surface
/// and constructors. Name-based resolution makes `String::new()` link to
/// every `new` in the workspace — one `QueryService::new` (which spawns
/// lock-taking workers) would then propagate its locks into every
/// function that constructs anything, drowning L008 in false cycles.
const RESOLVE_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "fmt",
    "from",
    "into",
    "next",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "to_string",
    "as_str",
    "as_ref",
    "deref",
    "len",
    "is_empty",
    "get",
    "insert",
    "push",
    "iter",
];

/// Callee names resolving to more than this many definitions are treated
/// like stoplisted ones: that ambiguous a name carries almost no
/// information, only noise.
const MAX_FANOUT: usize = 6;

/// All summarized functions plus a name → indices resolution map.
pub struct Workspace {
    pub fns: Vec<FnSummary>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    pub fn build(fns: Vec<FnSummary>) -> Workspace {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Workspace { fns, by_name }
    }

    /// Indices of every workspace function a call to `name` may reach.
    /// Stoplisted and over-ambiguous names resolve to nothing (see
    /// [`RESOLVE_STOPLIST`] / [`MAX_FANOUT`]).
    pub fn resolve(&self, name: &str) -> &[usize] {
        if RESOLVE_STOPLIST.contains(&name) {
            return &[];
        }
        match self.by_name.get(name) {
            Some(v) if v.len() <= MAX_FANOUT => v.as_slice(),
            _ => &[],
        }
    }
}

/// How a lock key became reachable from a function.
#[derive(Clone, Debug)]
pub struct LockWitness {
    /// Acquisition site.
    pub file: String,
    pub line: usize,
    /// Call chain from the function to the acquirer (qualified names),
    /// empty for a direct acquisition.
    pub chain: Vec<String>,
}

/// How a blocking wait became reachable from a function.
#[derive(Clone, Debug)]
pub struct BlockWitness {
    pub what: String,
    pub file: String,
    pub line: usize,
    pub chain: Vec<String>,
}

/// Per-function transitive facts (indexed like `Workspace::fns`).
pub struct Reach {
    pub locks: Vec<BTreeMap<String, LockWitness>>,
    pub blocks: Vec<Option<BlockWitness>>,
    pub cancels: Vec<bool>,
}

/// Propagate per-function facts through the call graph to a fixed point.
pub fn analyze(ws: &Workspace) -> Reach {
    let n = ws.fns.len();
    let mut locks: Vec<BTreeMap<String, LockWitness>> = vec![BTreeMap::new(); n];
    let mut blocks: Vec<Option<BlockWitness>> = vec![None; n];
    let mut cancels = vec![false; n];

    for (i, f) in ws.fns.iter().enumerate() {
        for a in &f.acquires {
            locks[i].entry(a.key.clone()).or_insert(LockWitness {
                file: f.file.clone(),
                line: a.line,
                chain: Vec::new(),
            });
        }
        if let Some(b) = f.blocking.first() {
            blocks[i] = Some(BlockWitness {
                what: b.what.clone(),
                file: f.file.clone(),
                line: b.line,
                chain: Vec::new(),
            });
        }
        cancels[i] = f.cancel;
    }

    // Chains only ever get *shorter* for a known key and the key set is
    // finite, so this terminates; the round cap is a safety net.
    for _round in 0..32 {
        let mut changed = false;
        for i in 0..n {
            for call in ws.fns[i].calls.clone() {
                for &t in ws.resolve(&call.callee) {
                    if t == i {
                        continue;
                    }
                    for (key, w) in locks[t].clone() {
                        if w.chain.len() + 1 > MAX_CHAIN {
                            continue;
                        }
                        let mut chain = vec![ws.fns[t].qual.clone()];
                        chain.extend(w.chain.iter().cloned());
                        let better = match locks[i].get(&key) {
                            None => true,
                            Some(cur) => chain.len() < cur.chain.len(),
                        };
                        if better {
                            locks[i].insert(
                                key,
                                LockWitness {
                                    file: w.file,
                                    line: w.line,
                                    chain,
                                },
                            );
                            changed = true;
                        }
                    }
                    if blocks[i].is_none() {
                        if let Some(b) = blocks[t].clone() {
                            if b.chain.len() < MAX_CHAIN {
                                let mut chain = vec![ws.fns[t].qual.clone()];
                                chain.extend(b.chain.iter().cloned());
                                blocks[i] = Some(BlockWitness { chain, ..b });
                                changed = true;
                            }
                        }
                    }
                    if !cancels[i] && cancels[t] {
                        cancels[i] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Reach {
        locks,
        blocks,
        cancels,
    }
}

/// One lock-order edge: `to` can be acquired while `from` is held.
#[derive(Clone, Debug)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// (file, line, note) steps showing how — first witness wins.
    pub evidence: Vec<(String, usize, String)>,
}

/// Build the deduplicated lock-order graph (first witness per edge).
pub fn lock_order_edges(ws: &Workspace, reach: &Reach) -> Vec<Edge> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut push = |edges: &mut Vec<Edge>, e: Edge| {
        if seen.insert((e.from.clone(), e.to.clone())) {
            edges.push(e);
        }
    };

    for f in &ws.fns {
        for he in &f.held_edges {
            push(
                &mut edges,
                Edge {
                    from: he.from.key.clone(),
                    to: he.to.key.clone(),
                    evidence: vec![
                        (
                            f.file.clone(),
                            he.from.line,
                            format!("{} takes guard on {}", f.qual, he.from.key),
                        ),
                        (
                            f.file.clone(),
                            he.to.line,
                            format!("acquires {} while {} is held", he.to.key, he.from.key),
                        ),
                    ],
                },
            );
        }
    }

    for (i, f) in ws.fns.iter().enumerate() {
        let _ = i;
        for hc in &f.held_calls {
            for &t in ws.resolve(&hc.callee) {
                for (key, w) in &reach.locks[t] {
                    // A propagated edge onto the *same* key is almost
                    // always two distinct locks aliased by receiver name
                    // (e.g. two `state` fields in one crate) — skip it.
                    // Direct in-function self-edges above are kept: those
                    // are real re-entrant acquisitions.
                    if *key == hc.held.key {
                        continue;
                    }
                    let mut note =
                        format!("calls {} while holding {}", ws.fns[t].qual, hc.held.key);
                    if !w.chain.is_empty() {
                        note.push_str(&format!(" (then via {})", w.chain.join(" -> ")));
                    }
                    push(
                        &mut edges,
                        Edge {
                            from: hc.held.key.clone(),
                            to: key.clone(),
                            evidence: vec![
                                (
                                    f.file.clone(),
                                    hc.held.line,
                                    format!("{} takes guard on {}", f.qual, hc.held.key),
                                ),
                                (f.file.clone(), hc.line, note),
                                (w.file.clone(), w.line, format!("which acquires {key}")),
                            ],
                        },
                    );
                }
            }
        }
    }
    edges
}

/// Find elementary cycles in the lock-order graph, deterministically.
/// Each cycle is returned as the edge list walking it: for every strongly
/// connected component (and every direct self-loop) we walk from its
/// smallest node always taking the smallest intra-component successor
/// until a node repeats — one representative cycle per component.
pub fn find_cycles(edges: &[Edge]) -> Vec<Vec<Edge>> {
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    for succ in adj.values_mut() {
        succ.sort_by(|a, b| a.to.cmp(&b.to));
    }

    let mut cycles = Vec::new();
    for scc in sccs(edges) {
        if scc.len() == 1 {
            // Single node: only a cycle if it has a self-loop edge.
            if let Some(e) = edges.iter().find(|e| e.from == scc[0] && e.to == scc[0]) {
                cycles.push(vec![e.clone()]);
            }
            continue;
        }
        let inset: BTreeSet<&String> = scc.iter().collect();
        let Some(start) = scc.iter().min() else {
            continue;
        };
        let mut path: Vec<&Edge> = Vec::new();
        let mut at = start.as_str();
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while visited.insert(at) {
            let next = adj
                .get(at)
                .and_then(|succ| succ.iter().find(|e| inset.contains(&e.to)));
            match next {
                Some(e) => {
                    path.push(e);
                    at = e.to.as_str();
                }
                None => break,
            }
        }
        // Trim the walk-in prefix so the path starts where it closes.
        if let Some(pos) = path.iter().position(|e| e.from == at) {
            cycles.push(path[pos..].iter().map(|e| (*e).clone()).collect());
        }
    }
    cycles
}

/// Strongly connected components of the edge set (iterative Tarjan),
/// returned sorted by smallest member for determinism.
fn sccs(edges: &[Edge]) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let idx: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&str> = nodes.iter().copied().collect();
    let n = names.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        adj[idx[e.from.as_str()]].push(idx[e.to.as_str()]);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<String>> = Vec::new();

    // Iterative Tarjan: (node, next successor position) frames.
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*pos) {
                *pos += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(names[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    out.push(comp);
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{scan, Tok};
    use crate::summary::summarize_file;

    fn workspace(files: &[(&str, &str)]) -> Workspace {
        let mut fns = Vec::new();
        for (path, src) in files {
            let toks = scan(src);
            let code: Vec<&Tok> = toks.iter().filter(|t| !t.kind.is_comment()).collect();
            fns.extend(summarize_file(path, &code, |_| false));
        }
        Workspace::build(fns)
    }

    #[test]
    fn locks_propagate_through_calls() {
        let ws = workspace(&[(
            "crates/query/src/x.rs",
            "fn outer(&self) { self.middle(); }\nfn middle(&self) { self.leaf(); }\nfn leaf(&self) { let g = self.cache.lock(); }\n",
        )]);
        let reach = analyze(&ws);
        let outer = ws.resolve("outer")[0];
        let w = &reach.locks[outer]["query/cache"];
        assert_eq!(w.chain, ["middle", "leaf"]);
    }

    #[test]
    fn two_path_cycle_is_found() {
        // Path 1: a held, then b acquired. Path 2: b held, then a
        // acquired via a call. Classic deadlock shape.
        let ws = workspace(&[(
            "crates/query/src/x.rs",
            concat!(
                "fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n",
                "fn two(&self) { let g = self.b.lock(); self.take_a(); }\n",
                "fn take_a(&self) { let g = self.a.lock(); }\n",
            ),
        )]);
        let reach = analyze(&ws);
        let edges = lock_order_edges(&ws, &reach);
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1, "{edges:?}");
        let cyc = &cycles[0];
        assert_eq!(cyc.len(), 2);
        assert_eq!(cyc[0].from, "query/a");
        assert_eq!(cyc[0].to, "query/b");
        assert_eq!(cyc[1].from, "query/b");
        assert_eq!(cyc[1].to, "query/a");
        // The propagated edge names the call chain in its evidence.
        assert!(cyc[1].evidence.iter().any(|(_, _, n)| n.contains("take_a")));
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let ws = workspace(&[(
            "crates/query/src/x.rs",
            concat!(
                "fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n",
                "fn two(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n",
            ),
        )]);
        let reach = analyze(&ws);
        let cycles = find_cycles(&lock_order_edges(&ws, &reach));
        assert!(cycles.is_empty());
    }

    #[test]
    fn direct_self_edge_is_a_cycle() {
        let ws = workspace(&[(
            "crates/query/src/x.rs",
            "fn re(&self) {\n    let g = self.a.lock();\n    let h = self.a.lock();\n}\n",
        )]);
        let reach = analyze(&ws);
        let cycles = find_cycles(&lock_order_edges(&ws, &reach));
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0][0].from, "query/a");
        assert_eq!(cycles[0][0].to, "query/a");
    }

    #[test]
    fn propagated_self_edge_is_suppressed() {
        // Two different structs both with a `state` field: calling one
        // while holding the other aliases to the same key. Not a cycle.
        let ws = workspace(&[(
            "crates/query/src/x.rs",
            concat!(
                "fn breaker(&self) { let g = self.state.lock(); self.note(); }\n",
                "fn note(&self) { let g = self.state.lock(); }\n",
            ),
        )]);
        let reach = analyze(&ws);
        let cycles = find_cycles(&lock_order_edges(&ws, &reach));
        assert!(cycles.is_empty(), "{cycles:?}");
    }

    #[test]
    fn blocking_and_cancel_propagate() {
        let ws = workspace(&[(
            "crates/join/src/x.rs",
            concat!(
                "fn caller(&self) { self.waits(); }\n",
                "fn waits(&self, rx: &Receiver<u8>) { let _ = rx.recv(); }\n",
                "fn polite(&self, c: &CancelToken) { c.check(); }\n",
            ),
        )]);
        let reach = analyze(&ws);
        let caller = ws.resolve("caller")[0];
        assert!(reach.blocks[caller].is_some());
        assert_eq!(reach.blocks[caller].as_ref().unwrap().chain, ["waits"]);
        assert!(!reach.cancels[caller]);
        let polite = ws.resolve("polite")[0];
        assert!(reach.cancels[polite]);
    }
}
