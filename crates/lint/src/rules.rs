//! The workspace invariant rules.
//!
//! Rules come in two shapes. `L001`–`L007` are **file rules**:
//! token-pattern passes over the comment-free token stream of one file.
//! `L008`–`L010` are **workspace rules**: they run over per-function
//! summaries ([`crate::summary`]) propagated through the approximate
//! call graph ([`crate::callgraph`]), so they can see facts no single
//! file contains — a lock-order cycle split across two modules, a
//! blocking wait three calls below a loop, a metric constant nobody
//! increments. All rules are deliberately heuristic — tokens and name
//! resolution, not a typed AST — but every pattern is chosen so the
//! *sanctioned* idiom in this workspace cannot trip it, and anything it
//! does flag is either a real invariant break or a site that deserves a
//! written suppression reason.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L001 | runtime paths return typed `Error`, never `unwrap`/`expect`/`panic!` |
//! | L002 | no unbounded blocking primitive: `thread::sleep`, bare `recv()`, `thread::park` go through cancellable helpers |
//! | L003 | no lock guard held across a send/sleep/file-I/O in join+cluster+query |
//! | L004 | file writes only on checksummed paths (persist/scratch/obs) |
//! | L005 | obs event/span/latency names come from `orv-obs::names`, not literals |
//! | L006 | no ambient clock/randomness outside obs + pacing + deadlines |
//! | L007 | retry loops go through `RecoveryPolicy`/`RetryBudget`, never ad-hoc counters |
//! | L008 | the workspace lock-order graph is acyclic (no two-path deadlock) |
//! | L009 | every loop reaching a blocking wait also reaches a cancel/deadline check |
//! | L010 | every `orv_obs::names` constant has a runtime sink; every sink name is declared |
//!
//! `L000` is the meta-rule: malformed suppression comments (missing
//! reason, unknown rule id) are themselves findings and cannot be waived.

use crate::allowlist;
use crate::callgraph::{self, Reach, Workspace};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// Every rule id the engine knows, in report order. `L000` is the
/// suppression-hygiene meta-rule; `L001`..`L007` are the per-file
/// invariants; `L008`..`L010` are the whole-workspace structural rules.
pub const RULE_IDS: &[&str] = &[
    "L000", "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
];

/// One step of supporting evidence for a structural finding: a source
/// location plus what it shows. L008 cycles carry one step per
/// acquisition/call on each path; L009 carries the blocking site a loop
/// reaches.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Evidence {
    pub file: String,
    pub line: usize,
    pub note: String,
}

/// One finding, pointing at a file:line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule id (`L001`, ...).
    pub rule: &'static str,
    /// Human explanation of the finding.
    pub message: String,
    /// Supporting locations (empty for the per-file token rules).
    pub evidence: Vec<Evidence>,
}

impl Diagnostic {
    /// `file:line: RULE message` — the clickable terminal form, with one
    /// indented line per evidence step.
    pub fn human(&self) -> String {
        let mut s = format!(
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        );
        for ev in &self.evidence {
            s.push_str(&format!("\n    {}:{}: {}", ev.file, ev.line, ev.note));
        }
        s
    }

    /// One stable JSON object per finding (JSON-lines output). Key order
    /// is fixed so diffs and golden tests stay byte-stable; the
    /// `evidence` array is only present when non-empty, so the per-file
    /// rules' output is unchanged from PR 4.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            r#"{{"rule":"{}","file":"{}","line":{},"message":"{}"#,
            self.rule,
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        );
        s.push('"');
        if !self.evidence.is_empty() {
            s.push_str(r#","evidence":["#);
            for (i, ev) in self.evidence.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    r#"{{"file":"{}","line":{},"note":"{}"}}"#,
                    json_escape(&ev.file),
                    ev.line,
                    json_escape(&ev.note)
                ));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A comment-free view of one file's tokens plus its path, handed to each
/// rule pass.
pub struct FileCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// Tokens with comments stripped.
    pub code: Vec<&'a Tok>,
}

impl<'a> FileCtx<'a> {
    /// Build the comment-free view.
    pub fn new(rel_path: &'a str, toks: &'a [Tok]) -> Self {
        FileCtx {
            rel_path,
            code: toks.iter().filter(|t| !t.kind.is_comment()).collect(),
        }
    }

    fn ident_at(&self, i: usize, name: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind.ident() == Some(name))
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct(c))
    }

    /// Does `path::seg` (two colons) start at `i`?
    fn path_sep_at(&self, i: usize) -> bool {
        self.punct_at(i, ':') && self.punct_at(i + 1, ':')
    }

    fn in_dir(&self, prefix: &str) -> bool {
        self.rel_path.starts_with(prefix)
    }
}

/// Run every rule over one file; returns unfiltered findings (the engine
/// applies test-code exemption and suppressions afterwards).
pub fn run_rules(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    l001_no_panics(ctx, &mut out);
    l002_no_bare_sleep(ctx, &mut out);
    l003_no_guard_across_blocking(ctx, &mut out);
    l004_no_unchecked_file_writes(ctx, &mut out);
    l005_obs_names_from_registry(ctx, &mut out);
    l006_no_ambient_clock_or_rng(ctx, &mut out);
    l007_no_adhoc_retry_loops(ctx, &mut out);
    out
}

fn push(
    out: &mut Vec<Diagnostic>,
    ctx: &FileCtx<'_>,
    line: usize,
    rule: &'static str,
    message: String,
) {
    out.push(Diagnostic {
        file: ctx.rel_path.to_string(),
        line,
        rule,
        message,
        evidence: Vec::new(),
    });
}

/// L001 — no `unwrap()` / `expect(...)` / `panic!` in runtime paths.
///
/// PR 1's recovery story depends on workers failing with typed [`Error`]
/// values the scheduler can catch, retry, and reassign; a stray panic in
/// a QES worker bypasses containment and kills the whole query.
fn l001_no_panics(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.code.len() {
        let line = ctx.code[i].line;
        if ctx.punct_at(i, '.') && ctx.ident_at(i + 1, "unwrap") && ctx.punct_at(i + 2, '(') {
            push(
                out,
                ctx,
                line,
                "L001",
                "`unwrap()` in a runtime path; return a typed `orv_types::Error` instead".into(),
            );
        }
        // Only `.expect("...")` with a literal message: that is the
        // Option/Result panic form. Domain methods named `expect` (the
        // DSL parsers' token matcher) take non-string arguments.
        if ctx.punct_at(i, '.')
            && ctx.ident_at(i + 1, "expect")
            && ctx.punct_at(i + 2, '(')
            && matches!(ctx.code.get(i + 3), Some(t) if matches!(t.kind, TokKind::Str(_)))
        {
            push(
                out,
                ctx,
                line,
                "L001",
                "`expect()` in a runtime path; return a typed `orv_types::Error` instead".into(),
            );
        }
        for mac in ["panic", "todo", "unimplemented"] {
            if ctx.ident_at(i, mac) && ctx.punct_at(i + 1, '!') {
                push(out, ctx, line, "L001", format!(
                    "`{mac}!` in a runtime path; workers must fail with typed errors so recovery can contain them"));
            }
        }
    }
}

/// L002 — no unbounded blocking primitive outside the slice primitive:
/// bare `thread::sleep`, bare `recv()` (no timeout), `thread::park`.
///
/// All three park the thread until something external happens, with no
/// deadline and no cancellation point — exactly the shape the cancel
/// story (PR 3) exists to eliminate. Sanctioned replacements:
/// `CancelToken::sleep`, `recv_timeout` driven by a `WaitBudget` slice,
/// and condvar waits via the budgeted `wait_timeout` loops.
fn l002_no_bare_sleep(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if allowlist::L002_ALLOWED.contains(&ctx.rel_path) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.ident_at(i, "thread") && ctx.path_sep_at(i + 1) && ctx.ident_at(i + 3, "sleep") {
            push(out, ctx, ctx.code[i].line, "L002",
                "bare `thread::sleep`; use `CancelToken::sleep` (250 ms slices, cancellable) so queries unwind promptly".into());
        }
        if ctx.ident_at(i, "thread") && ctx.path_sep_at(i + 1) && ctx.ident_at(i + 3, "park") {
            push(out, ctx, ctx.code[i].line, "L002",
                "`thread::park` is an unbounded wait with no cancellation point; use a budgeted `wait_timeout` loop instead".into());
        }
        // Zero-argument `.recv()` — the unbounded channel wait.
        // `recv_timeout(..)` is a different identifier and stays legal.
        if ctx.punct_at(i, '.')
            && ctx.ident_at(i + 1, "recv")
            && ctx.punct_at(i + 2, '(')
            && ctx.punct_at(i + 3, ')')
        {
            push(out, ctx, ctx.code[i].line, "L002",
                "bare `recv()` waits forever; use `recv_timeout` sliced by a `WaitBudget`/`CancelToken` so the receiver stays cancellable".into());
        }
    }
}

/// L003 — in `crates/join`, `crates/cluster` and `crates/query`, a
/// `let`-bound lock guard must not stay live across a channel send, a
/// sleep, or file I/O.
///
/// The GH interconnect, the IJ Caching Service and the QueryService's
/// admission queue all run under worker-shared locks; holding one
/// across a blocking call turns a slow peer into a stalled cluster.
/// Heuristic: a guard is born at
/// `let [mut] NAME = <brace-free expr containing .lock()>;`, at the
/// same form over a lock helper — `relock(..)` or a path-qualified
/// `Self::lock(..)` / `Mutex::lock(..)`, the sharded cache's idiom —
/// or at a statement-final `.read();` / `.write();` (the RwLock
/// catalog pattern — chained temporaries like `.read().get(n)
/// .cloned();` die inside their own statement and are not guards),
/// and dies at `drop(NAME)` or when its enclosing brace scope closes.
fn l003_no_guard_across_blocking(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !(ctx.in_dir("crates/join/src/")
        || ctx.in_dir("crates/cluster/src/")
        || ctx.in_dir("crates/query/src/"))
    {
        return;
    }
    struct Guard {
        name: String,
        depth: usize,
        line: usize,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < ctx.code.len() {
        match &ctx.code[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokKind::Ident(kw) if kw == "let" => {
                // Brace-free statement lookahead for a `.lock()` call.
                let mut j = i + 1;
                let mut name = None;
                if ctx.ident_at(j, "mut") {
                    j += 1;
                }
                if let Some(TokKind::Ident(n)) = ctx.code.get(j).map(|t| &t.kind) {
                    name = Some(n.clone());
                }
                let mut k = i + 1;
                let mut has_lock = false;
                while k < ctx.code.len() {
                    match ctx.code[k].kind {
                        TokKind::Punct(';') | TokKind::Punct('{') => break,
                        TokKind::Punct('.')
                            if ctx.ident_at(k + 1, "lock")
                                && ctx.punct_at(k + 2, '(')
                                && ctx.punct_at(k + 3, ')') =>
                        {
                            has_lock = true;
                        }
                        // RwLock guards: only the statement-final
                        // `.read();` / `.write();` binds one — a chained
                        // `.read().get(..)` is a temporary that dies
                        // inside the statement.
                        TokKind::Punct('.')
                            if (ctx.ident_at(k + 1, "read") || ctx.ident_at(k + 1, "write"))
                                && ctx.punct_at(k + 2, '(')
                                && ctx.punct_at(k + 3, ')')
                                && ctx.punct_at(k + 4, ';') =>
                        {
                            has_lock = true;
                        }
                        // Helper-acquired guards: `relock(..)` (the
                        // poison-stripping wrapper) and path-qualified
                        // `Self::lock(shard)` / `Mutex::lock(&m)` bind a
                        // guard just like a method-form `.lock()` does.
                        TokKind::Ident(ref h) if h == "relock" && ctx.punct_at(k + 1, '(') => {
                            has_lock = true;
                        }
                        TokKind::Ident(ref h)
                            if h == "lock"
                                && ctx.punct_at(k + 1, '(')
                                && k >= 2
                                && ctx.punct_at(k - 1, ':')
                                && ctx.punct_at(k - 2, ':') =>
                        {
                            has_lock = true;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if let (true, Some(name)) = (has_lock, name) {
                    guards.push(Guard {
                        name,
                        depth,
                        line: ctx.code[i].line,
                    });
                }
                i = k;
                continue;
            }
            TokKind::Ident(kw) if kw == "drop" && ctx.punct_at(i + 1, '(') => {
                if let Some(TokKind::Ident(n)) = ctx.code.get(i + 2).map(|t| &t.kind) {
                    guards.retain(|g| &g.name != n);
                }
            }
            _ => {}
        }
        if !guards.is_empty() {
            let hazard = blocking_hazard(ctx, i);
            if let Some(what) = hazard {
                let held: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                let born = guards
                    .iter()
                    .map(|g| g.line)
                    .min()
                    .unwrap_or(ctx.code[i].line);
                push(out, ctx, ctx.code[i].line, "L003", format!(
                    "{what} while lock guard `{}` (taken line {born}) is live; drop or scope the guard first — a blocked holder stalls every peer on the interconnect",
                    held.join("`, `")));
                // One finding per hazard site is enough; clear to avoid
                // cascading duplicates for the same held guard.
                guards.clear();
            }
        }
        i += 1;
    }
}

/// Is the token at `i` the start of a blocking call (send, sleep, file
/// I/O)? Returns a short description when it is.
fn blocking_hazard(ctx: &FileCtx<'_>, i: usize) -> Option<&'static str> {
    if ctx.punct_at(i, '.') && ctx.punct_at(i + 2, '(') {
        match ctx.code.get(i + 1).and_then(|t| t.kind.ident()) {
            Some("send") => return Some("channel `send`"),
            Some("recv") => return Some("channel `recv`"),
            Some("sleep") => return Some("`sleep`"),
            Some("write_all") | Some("read_to_end") | Some("sync_all") | Some("read_exact") => {
                return Some("file I/O")
            }
            _ => {}
        }
    }
    if ctx.ident_at(i, "sleep") && ctx.punct_at(i + 1, '(') && !ctx.punct_at(i.wrapping_sub(1), '.')
    {
        return Some("`sleep`");
    }
    if (ctx.ident_at(i, "File") || ctx.ident_at(i, "OpenOptions")) && ctx.path_sep_at(i + 1) {
        return Some("file I/O");
    }
    if ctx.ident_at(i, "fs") && ctx.path_sep_at(i + 1) {
        return Some("file I/O");
    }
    None
}

/// L004 — no direct file creation/write outside the checksummed paths
/// (see [`allowlist::L004_ALLOWED`]).
fn l004_no_unchecked_file_writes(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if allowlist::L004_ALLOWED.contains(&ctx.rel_path)
        || allowlist::L004_ALLOWED_DIRS.iter().any(|d| ctx.in_dir(d))
    {
        return;
    }
    for i in 0..ctx.code.len() {
        let line = ctx.code[i].line;
        if ctx.ident_at(i, "File")
            && ctx.path_sep_at(i + 1)
            && (ctx.ident_at(i + 3, "create") || ctx.ident_at(i + 3, "options"))
        {
            push(out, ctx, line, "L004",
                "direct `File::create`/`File::options`; durable writes must go through metadata::persist, cluster scratch, or an obs sink (checksummed paths)".into());
        }
        if ctx.ident_at(i, "OpenOptions") {
            push(out, ctx, line, "L004",
                "direct `OpenOptions`; durable writes must go through metadata::persist, cluster scratch, or an obs sink (checksummed paths)".into());
        }
        if ctx.ident_at(i, "fs") && ctx.path_sep_at(i + 1) && ctx.ident_at(i + 3, "write") {
            push(out, ctx, line, "L004",
                "direct `fs::write`; durable writes must go through metadata::persist, cluster scratch, or an obs sink (checksummed paths)".into());
        }
    }
}

/// Obs call sites whose *first argument* is the event/span/metric name.
const L005_SINKS: &[&str] = &[
    "emit",
    "span",
    "span_with",
    "events_of_kind",
    "record_latency",
];

/// L005 — event/span/latency-metric names must be `orv_obs::names`
/// constants, not inline string literals. A typo'd literal name silently
/// breaks replay-from-log, the predicted-vs-measured phase mapping, and
/// the `ServingReport` latency export (which walks `names::LAT_ALL`).
fn l005_obs_names_from_registry(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if allowlist::L005_ALLOWED.contains(&ctx.rel_path) {
        return;
    }
    for i in 0..ctx.code.len() {
        if !ctx.punct_at(i, '.') || !ctx.punct_at(i + 2, '(') {
            continue;
        }
        let Some(callee) = ctx.code.get(i + 1).and_then(|t| t.kind.ident()) else {
            continue;
        };
        if !L005_SINKS.contains(&callee) {
            continue;
        }
        // Scan the first argument: from after `(` to the first top-level
        // `,` or the matching `)`.
        let mut depth = 0usize;
        let mut j = i + 3;
        while j < ctx.code.len() {
            match ctx.code[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(',') if depth == 0 => break,
                TokKind::Str(ref s) => {
                    push(out, ctx, ctx.code[j].line, "L005", format!(
                        "inline name literal \"{s}\" passed to `{callee}`; use a constant or builder from `orv_obs::names` so replay and phase mapping cannot drift"));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// L006 — no ambient time or randomness in runtime paths.
///
/// Seeded chaos replay (PR 2) reconstructs a run from its event log; any
/// `Instant::now`-driven branch or unseeded RNG in a QES path makes the
/// replay diverge from the original run.
fn l006_no_ambient_clock_or_rng(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if allowlist::L006_ALLOWED.contains(&ctx.rel_path)
        || allowlist::L006_ALLOWED_DIRS.iter().any(|d| ctx.in_dir(d))
    {
        return;
    }
    for i in 0..ctx.code.len() {
        let line = ctx.code[i].line;
        for clock in ["Instant", "SystemTime"] {
            if ctx.ident_at(i, clock) && ctx.path_sep_at(i + 1) && ctx.ident_at(i + 3, "now") {
                push(out, ctx, line, "L006", format!(
                    "`{clock}::now()` outside obs/Throttle/CancelToken; ambient time in a runtime path breaks seeded chaos replay"));
            }
        }
        if ctx.ident_at(i, "rand") && ctx.path_sep_at(i + 1) {
            push(out, ctx, line, "L006",
                "`rand::` in a runtime path; all randomness must come from the seeded FaultPlan/splitmix64 draws for replayability".into());
        }
    }
}

/// Loop-counter names that mark a loop as a retry loop.
const L007_RETRY_IDENTS: &[&str] = &["attempt", "attempts", "retry", "retries", "tries"];

/// Identifiers whose presence in the loop (header or body) shows the
/// retry is governed: the policy/budget types themselves, or their
/// bounding/pacing/draw methods.
const L007_SANCTIONED: &[&str] = &[
    "RecoveryPolicy",
    "RetryBudget",
    "max_attempts",
    "attempts_exhausted",
    "backoff",
    "try_draw",
    "run_with_retries",
];

/// L007 — retry loops in runtime paths must be governed by
/// [`RecoveryPolicy`] (attempt cap + deadline + backoff) or a
/// [`RetryBudget`] (success-funded token draws).
///
/// An ad-hoc `loop { attempt += 1 }` has no attempt cap a chaos test can
/// assert against, no backoff, and no budget linking retry volume to
/// downstream health — under overload it is exactly the retry-storm
/// amplifier the brownout controller exists to prevent. Heuristic: a
/// `for`/`while` loop whose header names a retry counter, or a `loop`
/// whose body increments one, fires unless the loop mentions a sanctioned
/// policy/budget identifier.
fn l007_no_adhoc_retry_loops(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !(ctx.in_dir("crates/join/src/")
        || ctx.in_dir("crates/cluster/src/")
        || ctx.in_dir("crates/query/src/"))
        || allowlist::L007_ALLOWED.contains(&ctx.rel_path)
    {
        return;
    }
    let is_retry_ident = |i: usize| {
        ctx.code
            .get(i)
            .and_then(|t| t.kind.ident())
            .is_some_and(|n| L007_RETRY_IDENTS.contains(&n))
    };
    let is_sanctioned = |i: usize| {
        ctx.code
            .get(i)
            .and_then(|t| t.kind.ident())
            .is_some_and(|n| L007_SANCTIONED.contains(&n))
    };
    // Index of the matching `}` for the `{` at `open` (saturates at EOF).
    let close_of = |open: usize| {
        let mut depth = 0usize;
        let mut j = open;
        while j < ctx.code.len() {
            match ctx.code[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        ctx.code.len()
    };
    let mut i = 0usize;
    while i < ctx.code.len() {
        let kw = ctx.code[i].kind.ident();
        let retry_shaped = match kw {
            // `for attempt in ...` / `while retries < N`: the header
            // names the counter.
            Some("for") | Some("while") => {
                let open = (i + 1..ctx.code.len())
                    .find(|&j| ctx.punct_at(j, '{'))
                    .unwrap_or(ctx.code.len());
                (i + 1..open).any(is_retry_ident).then_some(open)
            }
            // Bare `loop` with a counter increment (`retries += 1`) in
            // the body.
            Some("loop") if ctx.punct_at(i + 1, '{') => {
                let open = i + 1;
                let close = close_of(open);
                (open..close)
                    .any(|j| {
                        is_retry_ident(j) && ctx.punct_at(j + 1, '+') && ctx.punct_at(j + 2, '=')
                    })
                    .then_some(open)
            }
            _ => None,
        };
        if let Some(open) = retry_shaped {
            let close = close_of(open);
            if !(i..close).any(is_sanctioned) {
                push(out, ctx, ctx.code[i].line, "L007", format!(
                    "ad-hoc retry loop (`{}` counter); bound it with `RecoveryPolicy` (attempt cap + backoff) or draw from a `RetryBudget` so chaos tests can assert total retry volume",
                    (i..close)
                        .find_map(|j| ctx.code.get(j).and_then(|t| t.kind.ident())
                            .filter(|n| L007_RETRY_IDENTS.contains(n)))
                        .unwrap_or("retry")));
            }
            // Skip the header; the body may contain nested loops worth
            // their own scan.
            i = open + 1;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Workspace rules: L008–L010 run over the whole file set at once.
// ---------------------------------------------------------------------

/// Crates whose runtime loops L009 watches — the ones with worker pools,
/// interconnect waits and admission queues. (Same scope as L003/L007.)
const L009_DIRS: &[&str] = &[
    "crates/join/src/",
    "crates/cluster/src/",
    "crates/query/src/",
];

/// L008 — the workspace lock-order graph must be acyclic.
///
/// Two threads acquiring the same pair of locks in opposite orders is
/// the classic deadlock: each holds one and waits forever for the other,
/// and under load (PR 5's worker pool, PR 6's federation fan-out) the
/// whole service wedges. The graph has an edge A→B whenever some
/// function acquires B while holding a guard on A — directly, or by
/// calling (transitively) into a function that acquires B. Every cycle
/// is reported once, with the full acquisition chain of each path as
/// evidence.
pub fn l008_lock_order(ws: &Workspace, reach: &Reach, out: &mut Vec<Diagnostic>) {
    let edges = callgraph::lock_order_edges(ws, reach);
    for cycle in callgraph::find_cycles(&edges) {
        let keys: Vec<&str> = cycle.iter().map(|e| e.from.as_str()).collect();
        let ring = format!("{} -> {}", keys.join(" -> "), keys[0]);
        let mut evidence = Vec::new();
        for (n, e) in cycle.iter().enumerate() {
            for (file, line, note) in &e.evidence {
                evidence.push(Evidence {
                    file: file.clone(),
                    line: *line,
                    note: format!("[path {}] {}", n + 1, note),
                });
            }
        }
        let anchor = &cycle[0].evidence[0];
        out.push(Diagnostic {
            file: anchor.0.clone(),
            line: anchor.1,
            rule: "L008",
            message: format!(
                "lock-order cycle {ring}: two paths acquire these locks in opposite orders — a deadlock under concurrent load; pick one order and refactor the minority path"
            ),
            evidence,
        });
    }
}

/// L009 — every loop that reaches a blocking wait must also reach a
/// cancellation or deadline check in the same loop.
///
/// PR 3 threaded `CancelToken` through every blocking loop by hand;
/// this rule keeps refactors from quietly reintroducing an unkillable
/// wait. "Reaches" is transitive through the call graph: a loop calling
/// `drain()` which calls `recv_frame()` which parks on a condvar is just
/// as unkillable as one parking directly. A loop is compliant when its
/// body (nested loops included) mentions a cancel/deadline marker or
/// calls into code that does.
pub fn l009_cancellation(ws: &Workspace, reach: &Reach, out: &mut Vec<Diagnostic>) {
    for f in &ws.fns {
        if !L009_DIRS.iter().any(|d| f.file.starts_with(d)) {
            continue;
        }
        // Innermost-first: an outer loop is not re-reported when the
        // finding really lives in a nested loop it contains.
        let mut order: Vec<usize> = (0..f.loops.len()).collect();
        order.sort_by_key(|&i| f.loops[i].range.1 - f.loops[i].range.0);
        let mut fired: Vec<(usize, usize)> = Vec::new();
        for li in order {
            let lp = &f.loops[li];
            if fired
                .iter()
                .any(|&(s, e)| lp.range.0 <= s && e <= lp.range.1)
            {
                continue;
            }
            let mut evidence: Option<Evidence> = None;
            if let Some(b) = lp.blocking.first() {
                evidence = Some(Evidence {
                    file: f.file.clone(),
                    line: b.line,
                    note: format!("blocking `{}` directly in the loop body", b.what),
                });
            } else {
                'calls: for c in &lp.calls {
                    for &t in ws.resolve(&c.callee) {
                        if let Some(b) = &reach.blocks[t] {
                            let via = if b.chain.is_empty() {
                                ws.fns[t].qual.clone()
                            } else {
                                format!("{} -> {}", ws.fns[t].qual, b.chain.join(" -> "))
                            };
                            evidence = Some(Evidence {
                                file: b.file.clone(),
                                line: b.line,
                                note: format!(
                                    "loop calls `{}` (line {}), reaching blocking `{}` via {}",
                                    c.callee, c.line, b.what, via
                                ),
                            });
                            break 'calls;
                        }
                    }
                }
            }
            let Some(evidence) = evidence else { continue };
            let cancels = lp.cancel
                || lp
                    .calls
                    .iter()
                    .any(|c| ws.resolve(&c.callee).iter().any(|&t| reach.cancels[t]));
            if cancels {
                continue;
            }
            fired.push(lp.range);
            out.push(Diagnostic {
                file: f.file.clone(),
                line: lp.line,
                rule: "L009",
                message: format!(
                    "loop in `{}` reaches a blocking wait but no CancelToken/deadline check — an unkillable wait once the peer stalls; poll `cancel.check()` or bound the wait with a budget inside the loop",
                    f.qual
                ),
                evidence: vec![evidence],
            });
        }
    }
}

/// `{NAME}` identifiers interpolated into a format-string literal.
fn interpolated_names(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if j > start && bytes.get(j) == Some(&b'}') {
                out.push(s[start..j].to_string());
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// What `crates/obs/src/names.rs` declares, plus every runtime use site
/// seen so far. Build with [`MetricNames::from_names_file`], feed every
/// other runtime file through [`MetricNames::scan_usage`], then collect
/// findings with [`MetricNames::diagnostics`].
pub struct MetricNames {
    /// (ident, declaration line, declared as a plain `&str` constant).
    decls: Vec<(String, usize, bool)>,
    declared: BTreeSet<String>,
    used: BTreeSet<String>,
    /// `names::X` references whose `X` is not declared: (file, line, X).
    phantoms: Vec<(String, usize, String)>,
}

impl MetricNames {
    /// Parse the declarations out of the names registry's token stream:
    /// `pub const NAME: … = …;` and `pub fn builder(…)`. A constant
    /// whose initializer is a single string literal is a *name* constant
    /// (subject to the dead-name check); aggregate constants like
    /// `LAT_ALL: &[&str]` and builder functions only join the resolution
    /// set.
    ///
    /// A constant referenced from a (non-test) builder *body* — as an
    /// identifier or interpolated into a format string, e.g.
    /// `format!("bds{node}/{PHASE_EXTRACT}")` — counts as covered: the
    /// builder is the emitting path. References from other constants'
    /// initializers (the `LAT_ALL` aggregate) deliberately do not count;
    /// being listed in an export table is not being emitted.
    pub fn from_names_file(code: &[&Tok], is_test_line: impl Fn(usize) -> bool) -> MetricNames {
        let mut decls = Vec::new();
        let ident = |i: usize| code.get(i).and_then(|t: &&Tok| t.kind.ident());
        for i in 0..code.len() {
            match ident(i) {
                Some("const") => {
                    let Some(name) = ident(i + 1) else { continue };
                    // Find `=` then check for `Str ;`.
                    let mut j = i + 2;
                    let mut is_str = false;
                    while j < code.len() {
                        match code[j].kind {
                            TokKind::Punct('=') => {
                                is_str = matches!(
                                    code.get(j + 1).map(|t| &t.kind),
                                    Some(TokKind::Str(_))
                                ) && matches!(
                                    code.get(j + 2).map(|t| &t.kind),
                                    Some(TokKind::Punct(';'))
                                );
                                break;
                            }
                            TokKind::Punct(';') => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    decls.push((name.to_string(), code[i].line, is_str));
                }
                Some("fn") => {
                    if let Some(name) = ident(i + 1) {
                        decls.push((name.to_string(), code[i].line, false));
                    }
                }
                _ => {}
            }
        }
        let declared: BTreeSet<String> = decls.iter().map(|d| d.0.clone()).collect();
        let mut used = BTreeSet::new();
        for f in crate::items::parse_fns(code) {
            if is_test_line(f.line) {
                continue;
            }
            for tok in &code[f.body.0 + 1..f.body.1] {
                match &tok.kind {
                    TokKind::Ident(id) if declared.contains(id) => {
                        used.insert(id.clone());
                    }
                    TokKind::Str(s) => {
                        for name in interpolated_names(s) {
                            if declared.contains(&name) {
                                used.insert(name);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        MetricNames {
            decls,
            declared,
            used,
            phantoms: Vec::new(),
        }
    }

    /// Record every `names::X` reference in one runtime file (plus bare
    /// references inside the obs crate, which imports the constants
    /// directly). `is_test_line` excludes test code: a counter only
    /// asserted on in tests is still dead in production.
    pub fn scan_usage(
        &mut self,
        rel_path: &str,
        code: &[&Tok],
        is_test_line: impl Fn(usize) -> bool,
    ) {
        let in_obs = rel_path.starts_with("crates/obs/src/");
        for i in 0..code.len() {
            let Some(id) = code[i].kind.ident() else {
                continue;
            };
            if is_test_line(code[i].line) {
                continue;
            }
            let qualified = i >= 3
                && code[i - 1].kind == TokKind::Punct(':')
                && code[i - 2].kind == TokKind::Punct(':')
                && code[i - 3].kind.ident() == Some("names");
            if qualified {
                if self.declared.contains(id) {
                    self.used.insert(id.to_string());
                } else {
                    self.phantoms
                        .push((rel_path.to_string(), code[i].line, id.to_string()));
                }
            } else if in_obs && self.declared.contains(id) {
                self.used.insert(id.to_string());
            }
        }
    }

    /// L010 — dead name constants and phantom `names::` references.
    ///
    /// A declared-but-never-emitted counter means a dashboard or chaos
    /// assertion is silently reading zeros; an undeclared name at a sink
    /// would never be found by the exporters that walk the registry.
    /// Dead-name findings anchor at the declaration in `names.rs`;
    /// phantom findings anchor at the use site.
    pub fn diagnostics(&self, names_path: &str, out: &mut Vec<Diagnostic>) {
        for (name, line, is_str) in &self.decls {
            if *is_str && !self.used.contains(name) {
                out.push(Diagnostic {
                    file: names_path.to_string(),
                    line: *line,
                    rule: "L010",
                    message: format!(
                        "metric name `{name}` is declared but never emitted from any runtime path — remove it or wire up the increment/record/observe site"
                    ),
                    evidence: Vec::new(),
                });
            }
        }
        for (file, line, name) in &self.phantoms {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: "L010",
                message: format!(
                    "`names::{name}` does not resolve to a declared constant/builder in orv_obs::names — exporters walking the registry will never see it"
                ),
                evidence: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn findings(path: &str, src: &str) -> Vec<Diagnostic> {
        let toks = scan(src);
        run_rules(&FileCtx::new(path, &toks))
    }

    #[test]
    fn diagnostic_json_is_stable_and_escaped() {
        let d = Diagnostic {
            file: "a/b.rs".into(),
            line: 3,
            rule: "L001",
            message: "say \"no\"\\".into(),
            evidence: Vec::new(),
        };
        assert_eq!(
            d.to_json(),
            r#"{"rule":"L001","file":"a/b.rs","line":3,"message":"say \"no\"\\"}"#
        );
        assert_eq!(d.human(), r#"a/b.rs:3: L001 say "no"\"#);
    }

    #[test]
    fn diagnostic_json_carries_evidence_when_present() {
        let d = Diagnostic {
            file: "a/b.rs".into(),
            line: 3,
            rule: "L008",
            message: "cycle".into(),
            evidence: vec![
                Evidence {
                    file: "a/b.rs".into(),
                    line: 4,
                    note: "takes \"x\"".into(),
                },
                Evidence {
                    file: "c/d.rs".into(),
                    line: 9,
                    note: "acquires y".into(),
                },
            ],
        };
        assert_eq!(
            d.to_json(),
            r#"{"rule":"L008","file":"a/b.rs","line":3,"message":"cycle","evidence":[{"file":"a/b.rs","line":4,"note":"takes \"x\""},{"file":"c/d.rs","line":9,"note":"acquires y"}]}"#
        );
        assert!(d.human().contains("\n    a/b.rs:4: takes \"x\""));
    }

    #[test]
    fn l001_expect_needs_string_message() {
        // Parser-combinator `expect(&Token::LBrace)` is not Option::expect.
        let clean = findings(
            "crates/query/src/parser.rs",
            "fn f() { self.expect(&Token::LBrace)?; }",
        );
        assert!(clean.iter().all(|d| d.rule != "L001"), "{clean:?}");
        let hit = findings(
            "crates/query/src/parser.rs",
            "fn f() { x.expect(\"msg\"); }",
        );
        assert_eq!(hit.iter().filter(|d| d.rule == "L001").count(), 1);
    }

    #[test]
    fn l003_guard_scoped_out_is_clean() {
        let src = "fn f() {\n    {\n        let mut g = self.crcs.lock();\n        g.insert(1);\n    }\n    file.write_all(data);\n}\n";
        let hits = findings("crates/cluster/src/x.rs", src);
        assert!(hits.iter().all(|d| d.rule != "L003"), "{hits:?}");
    }

    #[test]
    fn l003_guard_across_send_fires() {
        let src = "fn f() {\n    let g = state.lock();\n    tx.send(msg);\n}\n";
        let hits = findings("crates/join/src/x.rs", src);
        assert_eq!(hits.iter().filter(|d| d.rule == "L003").count(), 1);
        assert!(hits[0].message.contains('g'));
    }

    #[test]
    fn l003_drop_releases_guard() {
        let src = "fn f() {\n    let g = state.lock();\n    drop(g);\n    tx.send(msg);\n}\n";
        let hits = findings("crates/join/src/x.rs", src);
        assert!(hits.iter().all(|d| d.rule != "L003"));
    }

    #[test]
    fn l003_let_with_braces_is_not_a_guard() {
        // `let x = match ... { ... .lock() ... };` must not register `x`
        // as a guard (the temporary dies inside the statement).
        let src = "fn f() {\n    let data = match kind {\n        K::M => mem.lock().get(n).cloned(),\n        K::F => { file.read_to_end(&mut buf); buf }\n    };\n}\n";
        let hits = findings("crates/cluster/src/x.rs", src);
        assert!(hits.iter().all(|d| d.rule != "L003"), "{hits:?}");
    }

    #[test]
    fn l003_watches_join_cluster_and_query_only() {
        let src = "fn f() {\n    let g = state.lock();\n    tx.send(msg);\n}\n";
        assert_eq!(
            findings("crates/query/src/x.rs", src)
                .iter()
                .filter(|d| d.rule == "L003")
                .count(),
            1,
            "the service layer's locks are watched too"
        );
        for outside in ["crates/costmodel/src/x.rs", "crates/obs/src/x.rs"] {
            assert!(findings(outside, src).iter().all(|d| d.rule != "L003"));
        }
    }

    #[test]
    fn l003_rwlock_guard_across_send_fires() {
        let src = "fn f() {\n    let cat = self.catalog.read();\n    tx.send(cat.names());\n}\n";
        let hits = findings("crates/query/src/x.rs", src);
        assert_eq!(hits.iter().filter(|d| d.rule == "L003").count(), 1);
        assert!(hits[0].message.contains("cat"));
    }

    #[test]
    fn l003_chained_rwlock_temporary_is_not_a_guard() {
        // The engine's catalog idiom: the read guard is a temporary that
        // dies at the end of the statement, so later blocking calls are
        // fine.
        let src = "fn f() {\n    let view = self.catalog.read().get(name).cloned();\n    tx.send(view);\n}\n";
        let hits = findings("crates/query/src/x.rs", src);
        assert!(hits.iter().all(|d| d.rule != "L003"), "{hits:?}");
    }

    #[test]
    fn l003_helper_acquired_guard_across_send_fires() {
        // The cache's shard idiom: guards born from the `Self::lock(..)`
        // helper (or a `relock(..)` wrapper) are guards all the same —
        // holding one across a channel send must fire.
        for src in [
            "fn f() {\n    let mut state = Self::lock(shard);\n    tx.send(state.take());\n}\n",
            "fn f() {\n    let mut queue = relock(self.queue.lock());\n    tx.send(queue.pop());\n}\n",
        ] {
            let hits = findings("crates/join/src/x.rs", src);
            assert_eq!(hits.iter().filter(|d| d.rule == "L003").count(), 1, "{src}");
        }
    }

    #[test]
    fn l003_helper_acquired_guard_dropped_before_send_is_clean() {
        let src = "fn f() {\n    let mut state = Self::lock(shard);\n    state.bump();\n    drop(state);\n    tx.send(msg);\n}\n";
        let hits = findings("crates/join/src/x.rs", src);
        assert!(hits.iter().all(|d| d.rule != "L003"), "{hits:?}");
    }

    #[test]
    fn l003_covers_the_federation_router() {
        // The federation router lives in `crates/query/src`, so the
        // no-guard-across-blocking invariant binds it like the rest of
        // the serving layer: holding the breaker-state lock across a
        // sub-query send must fire.
        let src = "fn f() {\n    let state = self.health.lock();\n    tx.send(spec);\n}\n";
        let hits = findings("crates/query/src/federation.rs", src);
        assert_eq!(hits.iter().filter(|d| d.rule == "L003").count(), 1);
        assert!(hits[0].message.contains("state"));
        // The router's actual idiom — drop the guard before dispatching —
        // stays clean.
        let ok = "fn f() {\n    let state = self.health.lock();\n    drop(state);\n    tx.send(spec);\n}\n";
        let clean = findings("crates/query/src/federation.rs", ok);
        assert!(clean.iter().all(|d| d.rule != "L003"), "{clean:?}");
    }

    #[test]
    fn l005_covers_the_federation_router() {
        // Federation counters and spans must come from the names
        // registry, not string literals, so dashboards and tests can't
        // drift from the emitting site.
        let hit = findings(
            "crates/query/src/federation.rs",
            "fn f() { obs.events.emit(\"fed_hedge\", || vec![(\"shard\", s)]); }",
        );
        assert_eq!(hit.iter().filter(|d| d.rule == "L005").count(), 1);
        let clean = findings(
            "crates/query/src/federation.rs",
            "fn f() { obs.events.emit(names::FED_HEDGES, || vec![(\"shard\", s)]); }",
        );
        assert!(clean.iter().all(|d| d.rule != "L005"), "{clean:?}");
    }

    #[test]
    fn l005_first_arg_literal_fires_but_payload_does_not() {
        let hit = findings(
            "crates/query/src/engine.rs",
            "fn f() { obs.events.emit(\"qes_choice\", || vec![(\"algorithm\", x)]); }",
        );
        assert_eq!(hit.iter().filter(|d| d.rule == "L005").count(), 1);
        let clean = findings(
            "crates/query/src/engine.rs",
            "fn f() { obs.events.emit(names::QES_CHOICE, || vec![(\"algorithm\", x)]); }",
        );
        assert!(clean.iter().all(|d| d.rule != "L005"), "{clean:?}");
    }

    #[test]
    fn l005_span_with_format_literal_fires() {
        let hit = findings(
            "crates/bds/src/service.rs",
            "fn f() { spans.span_with(|| format!(\"bds{}/read\", n)); }",
        );
        assert_eq!(hit.iter().filter(|d| d.rule == "L005").count(), 1);
        let clean = findings(
            "crates/bds/src/service.rs",
            "fn f() { spans.span_with(|| names::span_bds_read(n)); }",
        );
        assert!(clean.iter().all(|d| d.rule != "L005"));
    }

    #[test]
    fn l005_record_latency_literal_fires() {
        // The latency export walks `names::LAT_ALL`; a literal phase name
        // here would record samples the report can never find.
        let hit = findings(
            "crates/query/src/service.rs",
            "fn f() { obs.metrics.record_latency(\"lat/exec_secs\", secs); }",
        );
        assert_eq!(hit.iter().filter(|d| d.rule == "L005").count(), 1);
        let clean = findings(
            "crates/query/src/service.rs",
            "fn f() { obs.metrics.record_latency(names::LAT_EXEC, secs); }",
        );
        assert!(clean.iter().all(|d| d.rule != "L005"), "{clean:?}");
    }

    #[test]
    fn l007_adhoc_for_attempt_loop_fires() {
        let src = "fn f() {\n    for attempt in 0..3 {\n        if send(attempt).is_ok() { return Ok(()); }\n    }\n    Err(e)\n}\n";
        let hits = findings("crates/query/src/x.rs", src);
        assert_eq!(hits.iter().filter(|d| d.rule == "L007").count(), 1);
        assert!(hits[0].message.contains("attempt"), "{hits:?}");
    }

    #[test]
    fn l007_adhoc_while_and_loop_counters_fire() {
        let wh = "fn f() {\n    let mut retries = 0;\n    while retries < 5 {\n        retries += 1;\n    }\n}\n";
        assert_eq!(
            findings("crates/cluster/src/x.rs", wh)
                .iter()
                .filter(|d| d.rule == "L007")
                .count(),
            1
        );
        let lp = "fn f() {\n    let mut tries = 0u32;\n    loop {\n        if go().is_ok() { break; }\n        tries += 1;\n    }\n}\n";
        assert_eq!(
            findings("crates/join/src/x.rs", lp)
                .iter()
                .filter(|d| d.rule == "L007")
                .count(),
            1
        );
    }

    #[test]
    fn l007_policy_governed_loops_are_clean() {
        // The federation idiom: the attempt cap comes from the policy.
        let for_src = "fn f(&self) {\n    for attempt in 0..self.cfg.recovery.max_attempts {\n        self.cancel.sleep(self.cfg.recovery.backoff(attempt));\n    }\n}\n";
        assert!(findings("crates/query/src/federation.rs", for_src)
            .iter()
            .all(|d| d.rule != "L007"));
        // The grace-join idiom: exhaustion + backoff checks in the body.
        let loop_src = "fn f() {\n    let mut retries = 0u64;\n    loop {\n        if policy.attempts_exhausted(retries) { return Err(e); }\n        cancel.sleep(policy.backoff(retries as u32))?;\n        retries += 1;\n    }\n}\n";
        assert!(findings("crates/join/src/grace.rs", loop_src)
            .iter()
            .all(|d| d.rule != "L007"));
        // Budget-drawn re-issue loops are sanctioned too.
        let budget_src = "fn f() {\n    let mut retries = 0u64;\n    loop {\n        if !budget.try_draw() { return Err(e); }\n        retries += 1;\n    }\n}\n";
        assert!(findings("crates/query/src/federation.rs", budget_src)
            .iter()
            .all(|d| d.rule != "L007"));
    }

    #[test]
    fn l007_scoped_to_runtime_crates_and_policy_impls() {
        let src = "fn f() {\n    for attempt in 0..3 {\n        go(attempt);\n    }\n}\n";
        assert!(findings("crates/bench/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "L007"));
        // The machinery's own files are the policy; their internal loops
        // are exempt.
        assert!(findings("crates/cluster/src/fault.rs", src)
            .iter()
            .all(|d| d.rule != "L007"));
        assert!(findings("crates/cluster/src/retry_budget.rs", src)
            .iter()
            .all(|d| d.rule != "L007"));
    }

    #[test]
    fn l007_ordinary_loops_never_fire() {
        let src = "fn f() {\n    for chunk in chunks {\n        go(chunk);\n    }\n    loop {\n        count += 1;\n        if count > 3 { break; }\n    }\n}\n";
        assert!(findings("crates/query/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "L007"));
    }

    #[test]
    fn allowlisted_files_skip_their_rule() {
        let sleep = "fn f() { std::thread::sleep(d); }";
        assert!(findings("crates/cluster/src/cancel.rs", sleep)
            .iter()
            .all(|d| d.rule != "L002"));
        assert_eq!(
            findings("crates/join/src/grace.rs", sleep)
                .iter()
                .filter(|d| d.rule == "L002")
                .count(),
            1
        );

        let io = "fn f() { let f = File::create(p); }";
        assert!(findings("crates/metadata/src/persist.rs", io)
            .iter()
            .all(|d| d.rule != "L004"));
        assert_eq!(
            findings("crates/chunk/src/format.rs", io)
                .iter()
                .filter(|d| d.rule == "L004")
                .count(),
            1
        );

        let clock = "fn f() { let t = Instant::now(); }";
        assert!(findings("crates/obs/src/span.rs", clock)
            .iter()
            .all(|d| d.rule != "L006"));
        assert_eq!(
            findings("crates/join/src/grace.rs", clock)
                .iter()
                .filter(|d| d.rule == "L006")
                .count(),
            1
        );
    }
}
