//! A lightweight Rust token scanner.
//!
//! This is not a full Rust lexer — it is the minimum needed to run token
//! pattern rules reliably: it separates identifiers, punctuation, and
//! numeric/char literals, keeps string literals (including raw and byte
//! strings) as single opaque tokens so code-looking text inside them can
//! never trip a rule, and keeps comments as tokens so the classifier and
//! the suppression parser can see them. The same hand-rolled style as the
//! layout/query DSL lexers (`crates/layout/src/lexer.rs`), scaled up to
//! Rust's literal forms.

use std::fmt;

/// One scanned token with its 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tok {
    /// Token kind/payload.
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// Token kinds. Everything a rule never inspects is collapsed into the
/// simplest bucket that keeps token boundaries correct.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `thread`, `fn`, ...).
    Ident(String),
    /// One punctuation character (`.`, `:`, `(`, `!`, ...). Multi-char
    /// operators appear as consecutive single-char tokens.
    Punct(char),
    /// A string literal (`"..."`, `r#"..."#`, `b"..."`); payload is the
    /// raw contents without quotes/escape processing.
    Str(String),
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) or loop label.
    Lifetime(String),
    /// A numeric literal (payload dropped; rules only care that it is one).
    Num,
    /// A `//` line comment, payload without the leading slashes.
    LineComment(String),
    /// A `/* ... */` block comment (possibly spanning lines).
    BlockComment,
}

impl TokKind {
    /// Is this token a comment of either form?
    pub fn is_comment(&self) -> bool {
        matches!(self, TokKind::LineComment(_) | TokKind::BlockComment)
    }

    /// The identifier payload, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "`{s}`"),
            TokKind::Punct(c) => write!(f, "`{c}`"),
            TokKind::Str(_) => write!(f, "string literal"),
            TokKind::Char => write!(f, "char literal"),
            TokKind::Lifetime(s) => write!(f, "'{s}"),
            TokKind::Num => write!(f, "numeric literal"),
            TokKind::LineComment(_) => write!(f, "line comment"),
            TokKind::BlockComment => write!(f, "block comment"),
        }
    }
}

/// Scan `src` into tokens. The scanner is total: unrecognized bytes become
/// `Punct` tokens rather than errors, so a stray character can never make
/// a whole file invisible to the rules.
pub fn scan(src: &str) -> Vec<Tok> {
    Scanner {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Scanner {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, line: usize) {
        self.out.push(Tok { kind, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'r' | 'b' if self.starts_raw_or_byte_literal() => self.raw_or_byte_literal(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                other => {
                    self.bump();
                    self.push(TokKind::Punct(other), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump(); // the two slashes
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment(text), line);
    }

    fn block_comment(&mut self, line: usize) {
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate
            }
        }
        self.push(TokKind::BlockComment, line);
    }

    fn string(&mut self, line: usize) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push(c);
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                c => text.push(c),
            }
        }
        self.push(TokKind::Str(text), line);
    }

    /// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, `br#`?
    /// (`rb` is not a Rust literal prefix.) Plain identifiers starting
    /// with `r`/`b` fall through to `ident`.
    fn starts_raw_or_byte_literal(&self) -> bool {
        matches!(
            (self.peek(), self.peek_at(1), self.peek_at(2)),
            (Some('r'), Some('"' | '#'), _)
                | (Some('b'), Some('"' | '\''), _)
                | (Some('b'), Some('r'), Some('"' | '#'))
        )
    }

    fn raw_or_byte_literal(&mut self, line: usize) {
        let mut raw = false;
        if self.peek() == Some('b') {
            self.bump();
        }
        if self.peek() == Some('r') {
            raw = true;
            self.bump();
        }
        if self.peek() == Some('\'') {
            // b'x' byte literal.
            self.bump();
            self.char_body();
            self.push(TokKind::Char, line);
            return;
        }
        if !raw {
            // b"..." — ordinary escaped string body.
            self.string(line);
            return;
        }
        // Raw string: count hashes, then scan to `"` followed by that many.
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            hashes += 1;
            self.bump();
        }
        let mut text = String::new();
        if self.peek() == Some('"') {
            self.bump();
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for i in 0..hashes {
                        if self.peek_at(i) != Some('#') {
                            text.push('"');
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
            }
        }
        self.push(TokKind::Str(text), line);
    }

    /// Consume the remainder of a char literal after the opening `'`.
    fn char_body(&mut self) {
        if self.bump() == Some('\\') {
            self.bump(); // the escaped character
        }
        // Closing quote (tolerate absence).
        if self.peek() == Some('\'') {
            self.bump();
        }
    }

    fn char_or_lifetime(&mut self, line: usize) {
        // `'a` (lifetime) vs `'a'` (char). A lifetime is `'` + ident not
        // followed by a closing `'`.
        self.bump(); // `'`
        let is_ident_start = self.peek().is_some_and(|c| c.is_alphabetic() || c == '_');
        if is_ident_start {
            // Look ahead past the identifier for a closing quote.
            let mut j = 0usize;
            while self
                .peek_at(j)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                j += 1;
            }
            if self.peek_at(j) != Some('\'') {
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime(name), line);
                return;
            }
        }
        self.char_body();
        self.push(TokKind::Char, line);
    }

    fn number(&mut self, line: usize) {
        // Digits, then `.` only when followed by a digit (so `1.max(2)`
        // leaves the dot as punctuation), then an alphanumeric suffix
        // (covers hex/exponents/type suffixes without validating them).
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.bump();
        }
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
        }
        self.push(TokKind::Num, line);
    }

    fn ident(&mut self, line: usize) {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident(s), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        scan(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("a.unwrap()"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Punct('.'),
                TokKind::Ident("unwrap".into()),
                TokKind::Punct('('),
                TokKind::Punct(')'),
            ]
        );
    }

    #[test]
    fn strings_are_opaque() {
        // Code-looking text inside a string must not produce idents.
        let toks = kinds(r#"let s = "x.unwrap() // not a comment";"#);
        assert!(toks
            .iter()
            .all(|t| t.ident() != Some("unwrap") && !t.is_comment()));
        assert!(toks.contains(&TokKind::Str("x.unwrap() // not a comment".into())));
    }

    #[test]
    fn raw_and_byte_strings() {
        assert!(kinds(r##"r#"a "quoted" b"#"##).contains(&TokKind::Str(r#"a "quoted" b"#.into())));
        assert!(kinds(r#"b"bytes\n""#).contains(&TokKind::Str("bytes\\n".into())));
        assert!(kinds("br#\"raw bytes\"#").contains(&TokKind::Str("raw bytes".into())));
        // Identifiers starting with r/b are still identifiers.
        assert_eq!(
            kinds("rate bytes"),
            vec![
                TokKind::Ident("rate".into()),
                TokKind::Ident("bytes".into())
            ]
        );
    }

    #[test]
    fn escaped_quote_in_string() {
        assert!(kinds(r#""a\"b""#).contains(&TokKind::Str(r#"a\"b"#.into())));
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds("'\\n'"), vec![TokKind::Char]);
        assert_eq!(kinds("&'a str")[1], TokKind::Lifetime("a".into()));
        assert_eq!(kinds("b'\\0'"), vec![TokKind::Char]);
    }

    #[test]
    fn comments_kept_with_text() {
        let toks = scan("x // orv-lint: allow(L001) -- why\ny");
        assert_eq!(
            toks[1].kind,
            TokKind::LineComment(" orv-lint: allow(L001) -- why".into())
        );
        assert_eq!(toks[2].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(
            toks,
            vec![
                TokKind::Ident("a".into()),
                TokKind::BlockComment,
                TokKind::Ident("b".into()),
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = kinds("1.max(2) 1.5 0xFFu64 1_000");
        assert_eq!(toks[0], TokKind::Num);
        assert_eq!(toks[1], TokKind::Punct('.'));
        assert_eq!(toks[2], TokKind::Ident("max".into()));
        assert!(toks.contains(&TokKind::Punct('(')));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = scan("a\n/* two\nlines */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unknown_bytes_are_tolerated() {
        // Total scanner: nothing panics, everything becomes a token.
        let toks = scan("§ @ #");
        assert_eq!(toks.len(), 3);
    }
}
