//! `orv-lint` — the workspace invariant checker.
//!
//! PRs 1–3 built the resilience story (typed-error recovery, cancellable
//! 250 ms sleep slices, sealed-then-verified checksums, replayable event
//! logs); this crate turns the conventions they rely on into
//! machine-checked gates. It is a project-specific static-analysis pass:
//! a hand-rolled Rust token scanner (same pattern as the layout/query DSL
//! lexers) feeding two rule tiers, with per-site suppression comments and
//! both human and JSON-lines output.
//!
//! * **File rules** (`L001`–`L007`) are token-pattern passes over one
//!   file at a time.
//! * **Workspace rules** (`L008`–`L010`) are structural: a brace-tree
//!   item parser ([`items`]) finds every function, a summary pass
//!   ([`summary`]) reduces each body to lock acquisitions / blocking
//!   waits / cancellation polls / calls, and an approximate call graph
//!   ([`callgraph`]) propagates those facts workspace-wide — catching
//!   lock-order cycles, unkillable waits, and dead or phantom metric
//!   names that no single-file scan can see.
//!
//! Run it locally with:
//!
//! ```text
//! cargo run --release --bin orv-lint
//! ```
//!
//! See [`rules`] for the rule table, `DESIGN.md` §10 for the invariant
//! each file rule protects, and `DESIGN.md` §15 for the structural
//! engine and its known approximations.

pub mod allowlist;
pub mod callgraph;
pub mod classify;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod summary;
pub mod suppress;

pub use rules::{Diagnostic, Evidence, RULE_IDS};

use lexer::Tok;
use rules::FileCtx;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint one file's source text with the **file rules only** —
/// the workspace rules (`L008`–`L010`) need the whole file set; use
/// [`lint_files`] or [`lint_workspace`] for those. `rel_path` must be
/// workspace-relative with `/` separators — rules use it for scoping
/// and allowlists.
///
/// The pipeline: scan → classify test/runtime lines → collect
/// suppressions → run rules → filter. Test code is exempt from `L001`..
/// `L006`; well-formed suppressions waive findings on their own and the
/// following line; malformed suppressions surface as `L000` and cannot
/// themselves be waived.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let toks = lexer::scan(src);
    let class = classify::classify(rel_path, &toks);
    let sup = suppress::collect(&toks);
    let ctx = FileCtx::new(rel_path, &toks);
    let mut out: Vec<Diagnostic> = rules::run_rules(&ctx)
        .into_iter()
        .filter(|d| !class.is_test(d.line))
        .filter(|d| !sup.allows(d.rule, d.line))
        .collect();
    for bad in &sup.bad {
        out.push(Diagnostic {
            file: rel_path.to_string(),
            line: bad.line,
            rule: "L000",
            message: format!("malformed suppression: {}", bad.problem),
            evidence: Vec::new(),
        });
    }
    out.sort();
    out
}

/// The canonical location of the metric-name registry; when this file is
/// in the linted set, L010 cross-checks every other file against it.
const NAMES_PATH: &str = "crates/obs/src/names.rs";

/// Lint a set of files together: the per-file rules on each, then the
/// structural workspace rules (`L008`–`L010`) across all of them. This is
/// the full engine, callable on in-memory sources (the fixture tests) as
/// well as a real tree ([`lint_workspace`]).
///
/// Workspace findings are filtered against the suppressions and
/// test-line classification of the file each finding *anchors* in, so
/// `// orv-lint: allow(L008) -- reason` works at the acquisition site a
/// cycle report points at, just like file-rule suppressions.
pub fn lint_files(files: &[(String, String)]) -> Vec<Diagnostic> {
    struct Loaded {
        rel: String,
        toks: Vec<Tok>,
        class: classify::LineClass,
        sup: suppress::Suppressions,
    }
    let loaded: Vec<Loaded> = files
        .iter()
        .map(|(rel, src)| {
            let toks = lexer::scan(src);
            let class = classify::classify(rel, &toks);
            let sup = suppress::collect(&toks);
            Loaded {
                rel: rel.clone(),
                toks,
                class,
                sup,
            }
        })
        .collect();

    let mut out: Vec<Diagnostic> = Vec::new();
    for f in &loaded {
        let ctx = FileCtx::new(&f.rel, &f.toks);
        out.extend(
            rules::run_rules(&ctx)
                .into_iter()
                .filter(|d| !f.class.is_test(d.line))
                .filter(|d| !f.sup.allows(d.rule, d.line)),
        );
        for bad in &f.sup.bad {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: bad.line,
                rule: "L000",
                message: format!("malformed suppression: {}", bad.problem),
                evidence: Vec::new(),
            });
        }
    }

    // Structural pass: summarize every runtime function, build the call
    // graph, and run the workspace rules.
    let mut fns = Vec::new();
    let mut metrics: Option<rules::MetricNames> = None;
    for f in &loaded {
        if f.class.is_all_test() {
            continue;
        }
        let code: Vec<&Tok> = f.toks.iter().filter(|t| !t.kind.is_comment()).collect();
        fns.extend(summary::summarize_file(&f.rel, &code, |l| {
            f.class.is_test(l)
        }));
        if f.rel == NAMES_PATH {
            metrics = Some(rules::MetricNames::from_names_file(&code, |l| {
                f.class.is_test(l)
            }));
        }
    }
    let ws = callgraph::Workspace::build(fns);
    let reach = callgraph::analyze(&ws);
    let mut wdiags = Vec::new();
    rules::l008_lock_order(&ws, &reach, &mut wdiags);
    rules::l009_cancellation(&ws, &reach, &mut wdiags);
    if let Some(mut metrics) = metrics {
        for f in &loaded {
            if f.rel == NAMES_PATH || f.class.is_all_test() {
                continue;
            }
            let code: Vec<&Tok> = f.toks.iter().filter(|t| !t.kind.is_comment()).collect();
            metrics.scan_usage(&f.rel, &code, |l| f.class.is_test(l));
        }
        metrics.diagnostics(NAMES_PATH, &mut wdiags);
    }

    let by_rel: BTreeMap<&str, &Loaded> = loaded.iter().map(|f| (f.rel.as_str(), f)).collect();
    out.extend(
        wdiags
            .into_iter()
            .filter(|d| match by_rel.get(d.file.as_str()) {
                Some(f) => !f.class.is_test(d.line) && !f.sup.allows(d.rule, d.line),
                None => true,
            }),
    );
    out.sort();
    out
}

/// Directories never descended into: build output, the offline stand-ins
/// for external crates (not our invariant surface), and VCS metadata.
const SKIP_DIRS: &[&str] = &["target", "local_stubs", ".git"];

/// Recursively collect every workspace `.rs` file under `root`, sorted by
/// relative path for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root` — file rules and workspace
/// rules. Findings are sorted by (file, line, rule) so output is stable
/// across runs and platforms.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        files.push((rel, src));
    }
    Ok(lint_files(&files))
}

/// The process exit code the driver should return for a set of findings:
/// 0 when clean, 1 when anything (including `L000`) fired.
pub fn exit_code(diags: &[Diagnostic]) -> u8 {
    u8::from(!diags.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_filters_test_code_and_suppressions() {
        let src = "\
fn runtime() {
    x.unwrap(); // orv-lint: allow(L001) -- infallible: checked above
    y.unwrap();
}

#[cfg(test)]
mod tests {
    fn t() {
        z.unwrap();
    }
}
";
        let diags = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "L001");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn malformed_suppression_is_l000_and_does_not_waive() {
        let src = "fn f() {\n    x.unwrap(); // orv-lint: allow(L001)\n}\n";
        let diags = lint_source("crates/x/src/lib.rs", src);
        let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"L000"), "{diags:?}");
        assert!(
            rules.contains(&"L001"),
            "missing reason must not waive: {diags:?}"
        );
    }

    #[test]
    fn exit_codes() {
        assert_eq!(exit_code(&[]), 0);
        assert_eq!(
            exit_code(&lint_source(
                "crates/x/src/lib.rs",
                "fn f() { panic!(\"boom\") }"
            )),
            1
        );
    }

    #[test]
    fn findings_sorted_by_file_line_rule() {
        let src = "fn f() {\n    panic!(\"b\");\n    x.unwrap();\n}\n";
        let diags = lint_source("crates/x/src/lib.rs", src);
        let lines: Vec<_> = diags.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
