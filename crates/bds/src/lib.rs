//! Basic Data Source service and synthetic dataset generation.
//!
//! A **Basic Data Source** is "an extractor and a group of file segments":
//! it interprets flat-file chunks as sub-tables. This crate provides
//!
//! * [`partition`] — regular grid partitioning and block-cyclic placement
//!   of chunks over storage nodes (how parallel simulation writers lay
//!   data out);
//! * [`generator`] — the oil-reservoir-style synthetic dataset generator
//!   (the paper's own evaluation datasets "were generated to exhibit
//!   similar characteristics to those of oil reservoir simulation
//!   datasets");
//! * [`deployment`] — a set of per-storage-node chunk stores plus the
//!   shared MetaData service and extractor registry;
//! * [`service`] — the BDS instance running on each storage node,
//!   answering sub-table requests for local chunks.

pub mod deployment;
pub mod generator;
pub mod partition;
pub mod service;

pub use deployment::Deployment;
pub use generator::{
    generate_dataset, plume_value, scalar_value, DatasetHandle, DatasetSpec, DatasetSpecBuilder,
    ScalarModel,
};
pub use partition::{GridPartition, Region};
pub use service::BdsService;
