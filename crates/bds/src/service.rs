//! The Basic Data Source service instance.
//!
//! One `BdsService` runs per storage node. "BDS instances execute on
//! storage nodes and accept requests for sub-tables corresponding to local
//! chunks": given a sub-table id `(i, j)`, the instance looks the chunk up
//! in the MetaData service, verifies locality, reads the chunk bytes from
//! its node's store, resolves an extractor, and returns the extracted
//! sub-table. Byte counters feed the run statistics of the threaded
//! runtime.

use crate::deployment::Deployment;
use orv_chunk::format::ChunkStore;
use orv_chunk::{ExtractorRegistry, SubTable};
use orv_cluster::{checksum, ByteCounter, CancelToken, FaultInjector};
use orv_metadata::MetadataService;
use orv_obs::{names, EventLog, Spans};
use orv_types::{Error, NodeId, Result, SubTableId};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// A BDS instance bound to one storage node.
pub struct BdsService {
    node: NodeId,
    store: Arc<Mutex<Box<dyn ChunkStore>>>,
    metadata: Arc<MetadataService>,
    registry: Arc<RwLock<ExtractorRegistry>>,
    bytes_read: ByteCounter,
    corruptions_detected: ByteCounter,
    chunk_reads: Arc<std::sync::atomic::AtomicU64>,
    faults: Arc<FaultInjector>,
    spans: Spans,
    events: EventLog,
    cancel: CancelToken,
}

impl BdsService {
    /// Create the instance for `node` out of a deployment.
    pub fn new(deployment: &Deployment, node: NodeId) -> Result<Self> {
        BdsService::with_faults(deployment, node, FaultInjector::disabled())
    }

    /// Create the instance for `node` with a fault injector attached:
    /// every chunk read first consults the injector, which may slow it
    /// down, fail it with a transient `Error::Cluster`, or flip a byte of
    /// a checksummed page so read-side verification has to catch it.
    pub fn with_faults(
        deployment: &Deployment,
        node: NodeId,
        faults: Arc<FaultInjector>,
    ) -> Result<Self> {
        BdsService::with_instruments(
            deployment,
            node,
            faults,
            Spans::disabled(),
            EventLog::disabled(),
            CancelToken::none(),
        )
    }

    /// Fully instrumented instance: faults, span collection (each
    /// `subtable` call records `bds{n}/read` and `bds{n}/extract` spans),
    /// an event log receiving `corruption_detected` events, and the
    /// query's cancellation token (checked before every read).
    pub fn with_instruments(
        deployment: &Deployment,
        node: NodeId,
        faults: Arc<FaultInjector>,
        spans: Spans,
        events: EventLog,
        cancel: CancelToken,
    ) -> Result<Self> {
        Ok(BdsService {
            node,
            store: Arc::clone(deployment.store(node)?),
            metadata: Arc::clone(deployment.metadata()),
            registry: Arc::clone(deployment.registry()),
            bytes_read: ByteCounter::new(),
            corruptions_detected: ByteCounter::new(),
            chunk_reads: deployment.chunk_read_counter(),
            faults,
            spans,
            events,
            cancel,
        })
    }

    /// One instance per storage node of the deployment.
    pub fn for_all_nodes(deployment: &Deployment) -> Result<Vec<Arc<BdsService>>> {
        BdsService::for_all_nodes_with_faults(deployment, FaultInjector::disabled())
    }

    /// One instance per storage node, all sharing one fault injector (so
    /// plan budgets apply across the whole execution).
    pub fn for_all_nodes_with_faults(
        deployment: &Deployment,
        faults: Arc<FaultInjector>,
    ) -> Result<Vec<Arc<BdsService>>> {
        BdsService::for_all_nodes_with_instruments(
            deployment,
            faults,
            Spans::disabled(),
            EventLog::disabled(),
            CancelToken::none(),
        )
    }

    /// One instance per storage node, sharing a fault injector, a span
    /// collector, an event log and a cancellation token.
    pub fn for_all_nodes_with_instruments(
        deployment: &Deployment,
        faults: Arc<FaultInjector>,
        spans: Spans,
        events: EventLog,
        cancel: CancelToken,
    ) -> Result<Vec<Arc<BdsService>>> {
        (0..deployment.num_storage_nodes())
            .map(|k| {
                Ok(Arc::new(BdsService::with_instruments(
                    deployment,
                    NodeId(k as u32),
                    Arc::clone(&faults),
                    spans.clone(),
                    events.clone(),
                    cancel.clone(),
                )?))
            })
            .collect()
    }

    /// This instance's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Produce the sub-table for chunk `id`, which must be local to this
    /// node.
    pub fn subtable(&self, id: SubTableId) -> Result<SubTable> {
        self.cancel.check()?;
        let meta = self.metadata.chunk_meta(id)?;
        if meta.node != self.node {
            return Err(Error::Cluster(format!(
                "chunk {id} lives on node {} but was requested from BDS instance on node {}",
                meta.node, self.node
            )));
        }
        let bytes = {
            let _read = self.spans.span_with(|| names::span_bds_read(self.node.0));
            self.faults
                .before_chunk_read(self.node.0 as u64, &self.cancel)?;
            let mut bytes = self.store.lock().read(&meta.location)?;
            self.bytes_read.add(bytes.len() as u64);
            self.chunk_reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Verify pages that carry a generation-time checksum. The
            // injector only targets those — it flips the *returned copy*
            // after checksumming, so verification must catch it and a
            // retry re-reads the pristine store.
            if let Some(expected) = meta.checksum {
                if self.faults.plan().chunk_corrupt_prob > 0.0 {
                    let mut copy = bytes.to_vec();
                    self.faults
                        .corrupt_chunk_page(self.node.0 as u64, &mut copy);
                    bytes = copy.into();
                }
                if let Err(e) = checksum::verify(expected, &bytes, &format!("chunk {id}")) {
                    self.corruptions_detected.add(1);
                    self.events.emit(names::CORRUPTION_DETECTED, || {
                        vec![
                            ("site", "chunk_read".into()),
                            ("what", format!("{id}").into()),
                            ("node", self.node.0.into()),
                        ]
                    });
                    return Err(e);
                }
            }
            bytes
        };
        let _extract = self
            .spans
            .span_with(|| names::span_bds_extract(self.node.0));
        let extractor = self.registry.read().resolve(&meta.extractors)?;
        extractor.extract(id, &bytes)
    }

    /// Total chunk bytes read from this node's store.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Checksum mismatches this instance caught (each one surfaced as a
    /// retryable `Error::Integrity`).
    pub fn corruptions_detected(&self) -> u64 {
        self.corruptions_detected.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, scalar_value, DatasetSpec};

    fn deployed() -> (Deployment, crate::generator::DatasetHandle) {
        let d = Deployment::in_memory(2);
        let spec = DatasetSpec::builder("t1")
            .grid([4, 4, 2])
            .partition([2, 2, 2])
            .scalar_attrs(&["oilp"])
            .seed(11)
            .build();
        let h = generate_dataset(&spec, &d).unwrap();
        (d, h)
    }

    #[test]
    fn extracts_local_chunks_with_correct_values() {
        let (d, h) = deployed();
        let services = BdsService::for_all_nodes(&d).unwrap();
        // Chunk 0 is on node 0 (block-cyclic).
        let st = services[0]
            .subtable(SubTableId::new(h.table.0, 0u32))
            .unwrap();
        assert_eq!(st.num_rows(), 8);
        // First record is grid point (0,0,0) with its deterministic oilp.
        let r = st.record(0);
        assert_eq!(r.values()[0], orv_types::Value::I32(0));
        assert_eq!(
            r.values()[3],
            orv_types::Value::F32(scalar_value(11, 0, [0, 0, 0]))
        );
        assert!(services[0].bytes_read() > 0);
    }

    #[test]
    fn rejects_remote_chunks() {
        let (d, h) = deployed();
        let services = BdsService::for_all_nodes(&d).unwrap();
        // Chunk 1 is on node 1; asking node 0 must fail.
        let err = services[0]
            .subtable(SubTableId::new(h.table.0, 1u32))
            .unwrap_err();
        assert!(err.to_string().contains("node"));
        assert!(services[1]
            .subtable(SubTableId::new(h.table.0, 1u32))
            .is_ok());
    }

    #[test]
    fn unknown_chunk_errors() {
        let (d, h) = deployed();
        let svc = BdsService::new(&d, NodeId(0)).unwrap();
        assert!(svc.subtable(SubTableId::new(h.table.0, 99u32)).is_err());
        assert!(svc.subtable(SubTableId::new(9u32, 0u32)).is_err());
    }

    #[test]
    fn injected_read_faults_are_transient_under_retry() {
        use orv_cluster::{FaultPlan, RecoveryPolicy};
        let (d, h) = deployed();
        let plan = FaultPlan {
            seed: 5,
            read_error_prob: 1.0,
            max_read_errors: 2,
            max_faults: 2,
            ..FaultPlan::none()
        };
        let svc = BdsService::with_faults(&d, NodeId(0), plan.injector()).unwrap();
        let id = SubTableId::new(h.table.0, 0u32);
        // First two reads are injected failures; the budget then runs dry
        // and the bounded retry succeeds.
        let (st, retries) = RecoveryPolicy::default().run(|| svc.subtable(id));
        assert_eq!(st.unwrap().num_rows(), 8);
        assert_eq!(retries, 2);
    }

    #[test]
    fn instrumented_service_records_read_and_extract_spans() {
        let (d, h) = deployed();
        let spans = Spans::enabled();
        let svc = BdsService::with_instruments(
            &d,
            NodeId(0),
            FaultInjector::disabled(),
            spans.clone(),
            EventLog::disabled(),
            CancelToken::none(),
        )
        .unwrap();
        svc.subtable(SubTableId::new(h.table.0, 0u32)).unwrap();
        let paths: Vec<String> = spans.records().into_iter().map(|r| r.path).collect();
        assert_eq!(
            paths,
            vec!["bds0/read".to_string(), "bds0/extract".to_string()]
        );
    }

    #[test]
    fn corrupted_page_is_detected_and_recovers_under_retry() {
        use orv_cluster::{FaultPlan, RecoveryPolicy};
        let (d, h) = deployed();
        let plan = FaultPlan {
            seed: 17,
            chunk_corrupt_prob: 1.0,
            max_chunk_corruptions: 2,
            max_faults: 2,
            ..FaultPlan::none()
        };
        let events = EventLog::enabled();
        let injector = plan.injector_with_events(events.clone());
        let svc = BdsService::with_instruments(
            &d,
            NodeId(0),
            injector.clone(),
            Spans::disabled(),
            events.clone(),
            CancelToken::none(),
        )
        .unwrap();
        let id = SubTableId::new(h.table.0, 0u32);
        // First attempt: injected flip, verification must catch it.
        let err = svc.subtable(id).unwrap_err();
        assert!(matches!(err, Error::Integrity(_)), "{err}");
        // Under the standard policy the corruption budget drains and the
        // re-read returns verified clean data.
        let (st, retries) = RecoveryPolicy::default().run(|| svc.subtable(id));
        assert_eq!(st.unwrap().num_rows(), 8);
        assert_eq!(retries, 1, "one more injected corruption, then clean");
        assert_eq!(svc.corruptions_detected(), 2);
        assert_eq!(injector.stats().chunk_corruptions, 2);
        // Every injected corruption was detected and logged.
        assert_eq!(events.events_of_kind("corruption_detected").len(), 2);
    }

    #[test]
    fn cancelled_token_stops_reads() {
        let (d, h) = deployed();
        let cancel = CancelToken::new();
        let svc = BdsService::with_instruments(
            &d,
            NodeId(0),
            FaultInjector::disabled(),
            Spans::disabled(),
            EventLog::disabled(),
            cancel.clone(),
        )
        .unwrap();
        let id = SubTableId::new(h.table.0, 0u32);
        assert!(svc.subtable(id).is_ok());
        cancel.cancel();
        assert!(matches!(svc.subtable(id), Err(Error::Cancelled)));
    }

    #[test]
    fn every_chunk_extractable_via_its_home_node() {
        let (d, h) = deployed();
        let services = BdsService::for_all_nodes(&d).unwrap();
        let mut total = 0;
        for c in d.metadata().all_chunks(h.table).unwrap() {
            let id = SubTableId {
                table: h.table,
                chunk: c,
            };
            let node = d.metadata().chunk_meta(id).unwrap().node;
            let st = services[node.index()].subtable(id).unwrap();
            total += st.num_rows();
        }
        assert_eq!(total as u64, h.total_tuples());
    }
}
