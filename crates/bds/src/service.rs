//! The Basic Data Source service instance.
//!
//! One `BdsService` runs per storage node. "BDS instances execute on
//! storage nodes and accept requests for sub-tables corresponding to local
//! chunks": given a sub-table id `(i, j)`, the instance looks the chunk up
//! in the MetaData service, verifies locality, reads the chunk bytes from
//! its node's store, resolves an extractor, and returns the extracted
//! sub-table. Byte counters feed the run statistics of the threaded
//! runtime.

use crate::deployment::Deployment;
use orv_chunk::format::ChunkStore;
use orv_chunk::{ExtractorRegistry, SubTable};
use orv_cluster::{ByteCounter, FaultInjector};
use orv_metadata::MetadataService;
use orv_obs::Spans;
use orv_types::{Error, NodeId, Result, SubTableId};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// A BDS instance bound to one storage node.
pub struct BdsService {
    node: NodeId,
    store: Arc<Mutex<Box<dyn ChunkStore>>>,
    metadata: Arc<MetadataService>,
    registry: Arc<RwLock<ExtractorRegistry>>,
    bytes_read: ByteCounter,
    faults: Arc<FaultInjector>,
    spans: Spans,
}

impl BdsService {
    /// Create the instance for `node` out of a deployment.
    pub fn new(deployment: &Deployment, node: NodeId) -> Result<Self> {
        BdsService::with_faults(deployment, node, FaultInjector::disabled())
    }

    /// Create the instance for `node` with a fault injector attached:
    /// every chunk read first consults the injector, which may slow it
    /// down or fail it with a transient `Error::Cluster`.
    pub fn with_faults(
        deployment: &Deployment,
        node: NodeId,
        faults: Arc<FaultInjector>,
    ) -> Result<Self> {
        BdsService::with_instruments(deployment, node, faults, Spans::disabled())
    }

    /// Fully instrumented instance: faults plus span collection — each
    /// `subtable` call records `bds{n}/read` and `bds{n}/extract` spans.
    pub fn with_instruments(
        deployment: &Deployment,
        node: NodeId,
        faults: Arc<FaultInjector>,
        spans: Spans,
    ) -> Result<Self> {
        Ok(BdsService {
            node,
            store: Arc::clone(deployment.store(node)?),
            metadata: Arc::clone(deployment.metadata()),
            registry: Arc::clone(deployment.registry()),
            bytes_read: ByteCounter::new(),
            faults,
            spans,
        })
    }

    /// One instance per storage node of the deployment.
    pub fn for_all_nodes(deployment: &Deployment) -> Result<Vec<Arc<BdsService>>> {
        BdsService::for_all_nodes_with_faults(deployment, FaultInjector::disabled())
    }

    /// One instance per storage node, all sharing one fault injector (so
    /// plan budgets apply across the whole execution).
    pub fn for_all_nodes_with_faults(
        deployment: &Deployment,
        faults: Arc<FaultInjector>,
    ) -> Result<Vec<Arc<BdsService>>> {
        BdsService::for_all_nodes_with_instruments(deployment, faults, Spans::disabled())
    }

    /// One instance per storage node, sharing a fault injector and a span
    /// collector.
    pub fn for_all_nodes_with_instruments(
        deployment: &Deployment,
        faults: Arc<FaultInjector>,
        spans: Spans,
    ) -> Result<Vec<Arc<BdsService>>> {
        (0..deployment.num_storage_nodes())
            .map(|k| {
                Ok(Arc::new(BdsService::with_instruments(
                    deployment,
                    NodeId(k as u32),
                    Arc::clone(&faults),
                    spans.clone(),
                )?))
            })
            .collect()
    }

    /// This instance's node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Produce the sub-table for chunk `id`, which must be local to this
    /// node.
    pub fn subtable(&self, id: SubTableId) -> Result<SubTable> {
        let meta = self.metadata.chunk_meta(id)?;
        if meta.node != self.node {
            return Err(Error::Cluster(format!(
                "chunk {id} lives on node {} but was requested from BDS instance on node {}",
                meta.node, self.node
            )));
        }
        let bytes = {
            let _read = self.spans.span_with(|| format!("bds{}/read", self.node.0));
            self.faults.before_chunk_read()?;
            let bytes = self.store.lock().read(&meta.location)?;
            self.bytes_read.add(bytes.len() as u64);
            bytes
        };
        let _extract = self
            .spans
            .span_with(|| format!("bds{}/extract", self.node.0));
        let extractor = self.registry.read().resolve(&meta.extractors)?;
        extractor.extract(id, &bytes)
    }

    /// Total chunk bytes read from this node's store.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_dataset, scalar_value, DatasetSpec};

    fn deployed() -> (Deployment, crate::generator::DatasetHandle) {
        let d = Deployment::in_memory(2);
        let spec = DatasetSpec::builder("t1")
            .grid([4, 4, 2])
            .partition([2, 2, 2])
            .scalar_attrs(&["oilp"])
            .seed(11)
            .build();
        let h = generate_dataset(&spec, &d).unwrap();
        (d, h)
    }

    #[test]
    fn extracts_local_chunks_with_correct_values() {
        let (d, h) = deployed();
        let services = BdsService::for_all_nodes(&d).unwrap();
        // Chunk 0 is on node 0 (block-cyclic).
        let st = services[0]
            .subtable(SubTableId::new(h.table.0, 0u32))
            .unwrap();
        assert_eq!(st.num_rows(), 8);
        // First record is grid point (0,0,0) with its deterministic oilp.
        let r = st.record(0);
        assert_eq!(r.values()[0], orv_types::Value::I32(0));
        assert_eq!(
            r.values()[3],
            orv_types::Value::F32(scalar_value(11, 0, [0, 0, 0]))
        );
        assert!(services[0].bytes_read() > 0);
    }

    #[test]
    fn rejects_remote_chunks() {
        let (d, h) = deployed();
        let services = BdsService::for_all_nodes(&d).unwrap();
        // Chunk 1 is on node 1; asking node 0 must fail.
        let err = services[0]
            .subtable(SubTableId::new(h.table.0, 1u32))
            .unwrap_err();
        assert!(err.to_string().contains("node"));
        assert!(services[1]
            .subtable(SubTableId::new(h.table.0, 1u32))
            .is_ok());
    }

    #[test]
    fn unknown_chunk_errors() {
        let (d, h) = deployed();
        let svc = BdsService::new(&d, NodeId(0)).unwrap();
        assert!(svc.subtable(SubTableId::new(h.table.0, 99u32)).is_err());
        assert!(svc.subtable(SubTableId::new(9u32, 0u32)).is_err());
    }

    #[test]
    fn injected_read_faults_are_transient_under_retry() {
        use orv_cluster::{FaultPlan, RecoveryPolicy};
        let (d, h) = deployed();
        let plan = FaultPlan {
            seed: 5,
            read_error_prob: 1.0,
            max_read_errors: 2,
            max_faults: 2,
            ..FaultPlan::none()
        };
        let svc = BdsService::with_faults(&d, NodeId(0), plan.injector()).unwrap();
        let id = SubTableId::new(h.table.0, 0u32);
        // First two reads are injected failures; the budget then runs dry
        // and the bounded retry succeeds.
        let (st, retries) = RecoveryPolicy::default().run(|| svc.subtable(id));
        assert_eq!(st.unwrap().num_rows(), 8);
        assert_eq!(retries, 2);
    }

    #[test]
    fn instrumented_service_records_read_and_extract_spans() {
        let (d, h) = deployed();
        let spans = Spans::enabled();
        let svc =
            BdsService::with_instruments(&d, NodeId(0), FaultInjector::disabled(), spans.clone())
                .unwrap();
        svc.subtable(SubTableId::new(h.table.0, 0u32)).unwrap();
        let paths: Vec<String> = spans.records().into_iter().map(|r| r.path).collect();
        assert_eq!(
            paths,
            vec!["bds0/read".to_string(), "bds0/extract".to_string()]
        );
    }

    #[test]
    fn every_chunk_extractable_via_its_home_node() {
        let (d, h) = deployed();
        let services = BdsService::for_all_nodes(&d).unwrap();
        let mut total = 0;
        for c in d.metadata().all_chunks(h.table).unwrap() {
            let id = SubTableId {
                table: h.table,
                chunk: c,
            };
            let node = d.metadata().chunk_meta(id).unwrap().node;
            let st = services[node.index()].subtable(id).unwrap();
            total += st.num_rows();
        }
        assert_eq!(total as u64, h.total_tuples());
    }
}
