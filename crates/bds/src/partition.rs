//! Regular grid partitioning and block-cyclic chunk placement.
//!
//! The evaluation datasets are 3-D grids `[(0,0,0), (g_x, g_y, g_z))`
//! partitioned into boxes of size `(p_x, p_y, p_z)`; each box becomes one
//! chunk, and chunks are "distributed along storage nodes in a block-cyclic
//! manner".

use orv_types::{BoundingBox, Error, Interval, NodeId, Result};

/// A half-open axis-aligned region of grid points: `lo[d] <= v < hi[d]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Region {
    /// Inclusive lower corner.
    pub lo: [u64; 3],
    /// Exclusive upper corner.
    pub hi: [u64; 3],
}

impl Region {
    /// Number of grid points inside.
    pub fn num_points(&self) -> u64 {
        (0..3)
            .map(|d| self.hi[d].saturating_sub(self.lo[d]))
            .product()
    }

    /// Bounding box over the named coordinate attributes (closed bounds on
    /// actual grid points, hence `hi - 1`).
    pub fn bbox(&self, coords: &[String]) -> BoundingBox {
        BoundingBox::from_dims(coords.iter().enumerate().map(|(d, name)| {
            (
                name.clone(),
                Interval::new(
                    self.lo[d] as f64,
                    (self.hi[d].max(self.lo[d] + 1) - 1) as f64,
                ),
            )
        }))
    }

    /// Iterate all grid points in lexicographic (x, y, z) order.
    pub fn points(&self) -> impl Iterator<Item = [u64; 3]> + '_ {
        let r = *self;
        (r.lo[0]..r.hi[0]).flat_map(move |x| {
            (r.lo[1]..r.hi[1]).flat_map(move |y| (r.lo[2]..r.hi[2]).map(move |z| [x, y, z]))
        })
    }
}

/// A regular partitioning of a 3-D grid.
#[derive(Clone, Debug)]
pub struct GridPartition {
    /// Grid extent per dimension (`g`).
    pub grid: [u64; 3],
    /// Partition (chunk) size per dimension (`p`).
    pub part: [u64; 3],
}

impl GridPartition {
    /// Build and validate (`grid`, `part` positive; `part ≤ grid`).
    pub fn new(grid: [u64; 3], part: [u64; 3]) -> Result<Self> {
        for d in 0..3 {
            if grid[d] == 0 || part[d] == 0 {
                return Err(Error::Config(format!(
                    "grid/partition extents must be positive (dim {d}: grid={} part={})",
                    grid[d], part[d]
                )));
            }
            if part[d] > grid[d] {
                return Err(Error::Config(format!(
                    "partition larger than grid in dim {d} ({} > {})",
                    part[d], grid[d]
                )));
            }
        }
        Ok(GridPartition { grid, part })
    }

    /// Number of chunks per dimension (`ceil(g/p)`).
    pub fn chunks_per_dim(&self) -> [u64; 3] {
        [0, 1, 2].map(|d| self.grid[d].div_ceil(self.part[d]))
    }

    /// Total number of chunks.
    pub fn num_chunks(&self) -> u64 {
        self.chunks_per_dim().iter().product()
    }

    /// Tuples per full chunk (`c_R` / `c_S` when the partition divides the
    /// grid evenly, as in all paper experiments).
    pub fn tuples_per_chunk(&self) -> u64 {
        self.part.iter().product()
    }

    /// Total grid points (`T`).
    pub fn total_points(&self) -> u64 {
        self.grid.iter().product()
    }

    /// The chunk index triple of linear chunk id `idx` (x fastest... we use
    /// lexicographic with z fastest: idx = (cx * ny + cy) * nz + cz).
    pub fn chunk_coords(&self, idx: u64) -> [u64; 3] {
        let n = self.chunks_per_dim();
        let cz = idx % n[2];
        let cy = (idx / n[2]) % n[1];
        let cx = idx / (n[1] * n[2]);
        [cx, cy, cz]
    }

    /// Linear chunk id of a chunk index triple.
    pub fn chunk_index(&self, c: [u64; 3]) -> u64 {
        let n = self.chunks_per_dim();
        (c[0] * n[1] + c[1]) * n[2] + c[2]
    }

    /// The region of grid points covered by chunk `idx` (clipped to the
    /// grid when the partition does not divide it evenly).
    pub fn chunk_region(&self, idx: u64) -> Region {
        let c = self.chunk_coords(idx);
        let lo = [0, 1, 2].map(|d| c[d] * self.part[d]);
        let hi = [0, 1, 2].map(|d| ((c[d] + 1) * self.part[d]).min(self.grid[d]));
        Region { lo, hi }
    }

    /// The chunk containing grid point `p`.
    pub fn chunk_of_point(&self, p: [u64; 3]) -> u64 {
        self.chunk_index([0, 1, 2].map(|d| p[d] / self.part[d]))
    }

    /// Block-cyclic placement: chunk `idx` lives on storage node
    /// `idx mod n_storage`.
    pub fn node_of_chunk(&self, idx: u64, n_storage: usize) -> NodeId {
        NodeId((idx % n_storage as u64) as u32)
    }

    /// Iterate `(chunk id, region, node)` for a deployment over
    /// `n_storage` nodes.
    pub fn chunks(&self, n_storage: usize) -> impl Iterator<Item = (u64, Region, NodeId)> + '_ {
        (0..self.num_chunks())
            .map(move |i| (i, self.chunk_region(i), self.node_of_chunk(i, n_storage)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_counts() {
        let p = GridPartition::new([64, 64, 4], [16, 32, 4]).unwrap();
        assert_eq!(p.chunks_per_dim(), [4, 2, 1]);
        assert_eq!(p.num_chunks(), 8);
        assert_eq!(p.tuples_per_chunk(), 16 * 32 * 4);
        assert_eq!(p.total_points(), 64 * 64 * 4);
    }

    #[test]
    fn chunk_indexing_roundtrips() {
        let p = GridPartition::new([8, 8, 8], [2, 4, 8]).unwrap();
        for idx in 0..p.num_chunks() {
            assert_eq!(p.chunk_index(p.chunk_coords(idx)), idx);
        }
    }

    #[test]
    fn regions_tile_the_grid_exactly() {
        let p = GridPartition::new([6, 4, 2], [2, 2, 2]).unwrap();
        let mut count = 0u64;
        for idx in 0..p.num_chunks() {
            count += p.chunk_region(idx).num_points();
        }
        assert_eq!(count, p.total_points());
        // Every point maps back to the chunk whose region contains it.
        for x in 0..6 {
            for y in 0..4 {
                for z in 0..2 {
                    let idx = p.chunk_of_point([x, y, z]);
                    let r = p.chunk_region(idx);
                    assert!(r.lo[0] <= x && x < r.hi[0]);
                    assert!(r.lo[1] <= y && y < r.hi[1]);
                    assert!(r.lo[2] <= z && z < r.hi[2]);
                }
            }
        }
    }

    #[test]
    fn uneven_partition_clips() {
        let p = GridPartition::new([5, 3, 1], [2, 2, 1]).unwrap();
        assert_eq!(p.chunks_per_dim(), [3, 2, 1]);
        // Last chunk along x covers only x=4.
        let last_x = p.chunk_region(p.chunk_index([2, 0, 0]));
        assert_eq!(last_x.lo[0], 4);
        assert_eq!(last_x.hi[0], 5);
        let total: u64 = (0..p.num_chunks())
            .map(|i| p.chunk_region(i).num_points())
            .sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn block_cyclic_placement_balances() {
        let p = GridPartition::new([8, 8, 1], [2, 2, 1]).unwrap(); // 16 chunks
        let mut counts = [0u32; 3];
        for (_, _, node) in p.chunks(3) {
            counts[node.index()] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), 16);
        assert!(counts.iter().all(|&c| c == 5 || c == 6));
    }

    #[test]
    fn region_bbox_and_points() {
        let r = Region {
            lo: [0, 2, 0],
            hi: [2, 4, 1],
        };
        assert_eq!(r.num_points(), 4);
        let pts: Vec<_> = r.points().collect();
        assert_eq!(pts, vec![[0, 2, 0], [0, 3, 0], [1, 2, 0], [1, 3, 0]]);
        let bb = r.bbox(&["x".into(), "y".into(), "z".into()]);
        assert_eq!(bb.get("x"), Interval::new(0.0, 1.0));
        assert_eq!(bb.get("y"), Interval::new(2.0, 3.0));
        assert_eq!(bb.get("z"), Interval::new(0.0, 0.0));
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert!(GridPartition::new([0, 1, 1], [1, 1, 1]).is_err());
        assert!(GridPartition::new([4, 4, 4], [0, 1, 1]).is_err());
        assert!(GridPartition::new([4, 4, 4], [8, 1, 1]).is_err());
    }
}
