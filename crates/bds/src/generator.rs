//! Synthetic oil-reservoir dataset generation.
//!
//! Mirrors the paper's Section 6 datasets: 3-D grids with coordinate
//! attributes `(x, y, z)` plus 4-byte scalar properties (`oilp`, `wp`,
//! ...), regularly partitioned into chunks, written in an
//! application-specific binary format, distributed block-cyclically over
//! storage nodes, and registered with the MetaData service.
//!
//! Scalar values are a *deterministic* function of `(seed, attribute,
//! coordinates)` — see [`scalar_value`] — so independently generated tables
//! over the same grid join verifiably: the result of `T1 ⊕_{xyz} T2` can be
//! recomputed point-wise by tests.

use crate::deployment::Deployment;
use crate::partition::GridPartition;
use orv_chunk::{ChunkMeta, Extractor as _, LayoutExtractor};
use orv_layout::{Endian, Item, LayoutDesc, RecordOrder};
use orv_types::{DataType, Error, Result, Schema, TableId, Value};
use std::sync::Arc;

/// How scalar values vary over the grid.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ScalarModel {
    /// Independent uniform noise in `[0, 1)` per grid point (the default;
    /// every chunk's scalar bounds span almost the full range).
    Uniform,
    /// Spatially correlated "plumes": a smooth field of a few Gaussian
    /// bumps plus small noise. Chunks then carry *tight* scalar bounds, so
    /// the MetaData service can prune chunks on scalar predicates — the
    /// paper's "lower and upper bounds on coordinate and scalar attributes"
    /// become informative.
    Plume,
}

/// Specification of one synthetic table.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Table name.
    pub name: String,
    /// Grid extent `(g_x, g_y, g_z)`.
    pub grid: [u64; 3],
    /// Partition (chunk) size `(p_x, p_y, p_z)`.
    pub partition: [u64; 3],
    /// Scalar attribute names (each an `f32`, 4 bytes — as in the paper).
    pub scalars: Vec<String>,
    /// Seed for the deterministic scalar generator.
    pub seed: u64,
    /// Scalar field model.
    pub scalar_model: ScalarModel,
    /// Byte order of the chunk format.
    pub endian: Endian,
    /// Record order of the chunk format.
    pub order: RecordOrder,
    /// Header bytes per chunk.
    pub header_len: usize,
}

impl DatasetSpec {
    /// Start building a spec for table `name`.
    pub fn builder(name: impl Into<String>) -> DatasetSpecBuilder {
        DatasetSpecBuilder {
            spec: DatasetSpec {
                name: name.into(),
                grid: [16, 16, 1],
                partition: [4, 4, 1],
                scalars: vec!["v".to_string()],
                seed: 0,
                scalar_model: ScalarModel::Uniform,
                endian: Endian::Little,
                order: RecordOrder::RowMajor,
                header_len: 0,
            },
        }
    }

    /// The grid partitioning implied by this spec.
    pub fn grid_partition(&self) -> Result<GridPartition> {
        GridPartition::new(self.grid, self.partition)
    }

    /// The layout description of this table's chunk format.
    pub fn layout(&self) -> LayoutDesc {
        let mut items: Vec<Item> = ["x", "y", "z"]
            .iter()
            .map(|c| Item::Field {
                name: (*c).to_string(),
                dtype: DataType::I32,
            })
            .collect();
        items.extend(self.scalars.iter().map(|s| Item::Field {
            name: s.clone(),
            dtype: DataType::F32,
        }));
        LayoutDesc {
            name: format!("{}_layout", self.name),
            endian: self.endian,
            order: self.order,
            header_len: self.header_len,
            items,
        }
    }

    /// Record size in bytes (3 coords + scalars, 4 bytes each).
    pub fn record_size(&self) -> usize {
        (3 + self.scalars.len()) * 4
    }
}

/// Fluent builder for [`DatasetSpec`].
pub struct DatasetSpecBuilder {
    spec: DatasetSpec,
}

impl DatasetSpecBuilder {
    /// Grid extent.
    pub fn grid(mut self, g: [u64; 3]) -> Self {
        self.spec.grid = g;
        self
    }

    /// Partition (chunk) size.
    pub fn partition(mut self, p: [u64; 3]) -> Self {
        self.spec.partition = p;
        self
    }

    /// Scalar attribute names.
    pub fn scalar_attrs(mut self, names: &[&str]) -> Self {
        self.spec.scalars = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Generator seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.spec.seed = s;
        self
    }

    /// Scalar field model (uniform noise vs spatially correlated plumes).
    pub fn scalar_model(mut self, m: ScalarModel) -> Self {
        self.spec.scalar_model = m;
        self
    }

    /// Chunk-format byte order.
    pub fn endian(mut self, e: Endian) -> Self {
        self.spec.endian = e;
        self
    }

    /// Chunk-format record order.
    pub fn order(mut self, o: RecordOrder) -> Self {
        self.spec.order = o;
        self
    }

    /// Chunk-format header bytes.
    pub fn header(mut self, n: usize) -> Self {
        self.spec.header_len = n;
        self
    }

    /// Finish.
    pub fn build(self) -> DatasetSpec {
        self.spec
    }
}

/// Handle to a generated dataset.
#[derive(Clone, Debug)]
pub struct DatasetHandle {
    /// The table's id in the MetaData service.
    pub table: TableId,
    /// Table name.
    pub name: String,
    /// Schema (coords + scalars).
    pub schema: Arc<Schema>,
    /// The grid partitioning used.
    pub partition: GridPartition,
    /// The spec the dataset was generated from.
    pub spec: DatasetSpec,
}

impl DatasetHandle {
    /// Total tuples (`T` contribution of this table).
    pub fn total_tuples(&self) -> u64 {
        self.partition.total_points()
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> u64 {
        self.partition.num_chunks()
    }

    /// Tuples per (full) chunk — the cost models' `c_R`/`c_S`.
    pub fn tuples_per_chunk(&self) -> u64 {
        self.partition.tuples_per_chunk()
    }

    /// Record size in bytes — the cost models' `RS_R`/`RS_S`.
    pub fn record_size(&self) -> usize {
        self.schema.record_size()
    }
}

/// The deterministic scalar generator: a value in `[0, 1)` from
/// `(seed, attribute index, x, y, z)` via splitmix64 finalization.
pub fn scalar_value(seed: u64, attr: u64, p: [u64; 3]) -> f32 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attr.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(p[0].wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(p[1].wrapping_mul(0x2545_F491_4F6C_DD1D))
        .wrapping_add(p[2].wrapping_mul(0xD6E8_FEB8_6659_FD93));
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    // 24 high bits → f32 in [0, 1).
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// The spatially correlated scalar generator: a smooth field of four
/// Gaussian plumes (centres and widths derived deterministically from the
/// seed) plus 5% uniform noise, normalized into `[0, 1)`.
pub fn plume_value(seed: u64, attr: u64, grid: [u64; 3], p: [u64; 3]) -> f32 {
    let unit = |k: u64| -> f64 {
        // A deterministic value in [0, 1) per (seed, attr, k).
        scalar_value(
            seed ^ 0xA5A5_5A5A_DEAD_BEEF,
            attr.wrapping_mul(31).wrapping_add(k),
            [k, 0, 0],
        ) as f64
    };
    let (gx, gy, gz) = (grid[0] as f64, grid[1] as f64, grid[2] as f64);
    let (x, y, z) = (p[0] as f64, p[1] as f64, p[2] as f64);
    let mut field = 0.0f64;
    for plume in 0..4u64 {
        let cx = unit(plume * 3) * gx;
        let cy = unit(plume * 3 + 1) * gy;
        let cz = unit(plume * 3 + 2) * gz;
        // Widths between 1/8 and 1/3 of each extent.
        let wx = gx * (0.125 + 0.2 * unit(100 + plume));
        let wy = gy * (0.125 + 0.2 * unit(200 + plume));
        let wz = (gz * (0.125 + 0.2 * unit(300 + plume))).max(1.0);
        let d2 = ((x - cx) / wx).powi(2) + ((y - cy) / wy).powi(2) + ((z - cz) / wz).powi(2);
        field += (-d2).exp();
    }
    // field ∈ (0, 4), but points typically sit under at most one plume
    // peak; clamp so a single peak saturates near 0.95, then add 5% noise.
    let noise = scalar_value(seed, attr, p) as f64 * 0.05;
    ((field / 1.2).min(0.95) + noise).min(0.999_999) as f32
}

/// Generate the dataset described by `spec` into `deployment`: write chunk
/// files, register the extractor, the table and every chunk's metadata.
pub fn generate_dataset(spec: &DatasetSpec, deployment: &Deployment) -> Result<DatasetHandle> {
    if deployment.num_storage_nodes() == 0 {
        return Err(Error::Config("deployment has no storage nodes".into()));
    }
    let partition = spec.grid_partition()?;
    let layout_desc = spec.layout();
    let extractor = Arc::new(LayoutExtractor::generate(&layout_desc, &["x", "y", "z"])?);
    let schema = Arc::clone(extractor.schema());
    deployment.registry().write().register(extractor.clone());
    // Persist the layout source so a reopened deployment can regenerate
    // this extractor without the original spec.
    deployment.metadata().register_layout(
        layout_desc.name.clone(),
        layout_desc.to_source(),
        ["x", "y", "z"].iter().map(|s| s.to_string()).collect(),
    );

    let table = deployment
        .metadata()
        .register_table(spec.name.clone(), Arc::clone(&schema))?;
    let coord_names: Vec<String> = vec!["x".into(), "y".into(), "z".into()];
    let n_storage = deployment.num_storage_nodes();
    let file = format!("{}.dat", spec.name);

    for (idx, region, node) in partition.chunks(n_storage) {
        let npoints = region.num_points() as usize;
        let mut cols: Vec<Vec<Value>> = (0..schema.arity())
            .map(|_| Vec::with_capacity(npoints))
            .collect();
        for p in region.points() {
            cols[0].push(Value::I32(p[0] as i32));
            cols[1].push(Value::I32(p[1] as i32));
            cols[2].push(Value::I32(p[2] as i32));
            for (ai, _) in spec.scalars.iter().enumerate() {
                let v = match spec.scalar_model {
                    ScalarModel::Uniform => scalar_value(spec.seed, ai as u64, p),
                    ScalarModel::Plume => plume_value(spec.seed, ai as u64, spec.grid, p),
                };
                cols[3 + ai].push(Value::F32(v));
            }
        }
        let bytes = extractor.layout().encode(&cols)?;
        let location = deployment.store(node)?.lock().append(&file, &bytes)?;

        // Bounding box: exact coordinate bounds from the region; scalar
        // bounds from the generated data.
        let mut bbox = region.bbox(&coord_names);
        for (ai, name) in spec.scalars.iter().enumerate() {
            let col = &cols[3 + ai];
            if !col.is_empty() {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for v in col {
                    let x = v.as_f64();
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
                bbox.set(name.clone(), orv_types::Interval::new(lo, hi));
            }
        }

        deployment.metadata().register_chunk(ChunkMeta {
            table,
            chunk: orv_types::ChunkId(idx as u32),
            node,
            location,
            attributes: schema.attrs().iter().map(|a| a.name.clone()).collect(),
            extractors: vec![layout_desc.name.clone()],
            bbox,
            num_records: npoints as u64,
            // Sealed before the bytes can be damaged: every read verifies
            // against this, so a flipped bit anywhere downstream is caught.
            checksum: Some(orv_cluster::crc32c(&bytes)),
        })?;
    }

    Ok(DatasetHandle {
        table,
        name: spec.name.clone(),
        schema,
        partition,
        spec: spec.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_value_is_deterministic_and_in_range() {
        let a = scalar_value(7, 0, [1, 2, 3]);
        let b = scalar_value(7, 0, [1, 2, 3]);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        // Different coordinates / attrs / seeds give different values.
        assert_ne!(a, scalar_value(7, 0, [1, 2, 4]));
        assert_ne!(a, scalar_value(7, 1, [1, 2, 3]));
        assert_ne!(a, scalar_value(8, 0, [1, 2, 3]));
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let s = DatasetSpec::builder("t1")
            .grid([32, 32, 2])
            .partition([8, 8, 2])
            .scalar_attrs(&["oilp", "soil"])
            .seed(5)
            .header(16)
            .build();
        assert_eq!(s.record_size(), 20);
        assert_eq!(s.layout().items.len(), 5);
        assert_eq!(s.layout().header_len, 16);
        assert_eq!(s.grid_partition().unwrap().num_chunks(), 16);
    }

    #[test]
    fn generate_registers_everything() {
        let d = Deployment::in_memory(2);
        let spec = DatasetSpec::builder("t1")
            .grid([8, 8, 2])
            .partition([4, 4, 2])
            .scalar_attrs(&["oilp"])
            .seed(3)
            .build();
        let h = generate_dataset(&spec, &d).unwrap();
        assert_eq!(h.total_tuples(), 128);
        assert_eq!(h.num_chunks(), 4);
        assert_eq!(h.tuples_per_chunk(), 32);
        assert_eq!(h.record_size(), 16);
        let md = d.metadata();
        assert_eq!(md.total_records(h.table).unwrap(), 128);
        assert_eq!(md.all_chunks(h.table).unwrap().len(), 4);
        // Extractor registered.
        assert!(d.registry().read().get("t1_layout").is_ok());
        // Chunks spread over both nodes.
        let meta0 = md
            .chunk_meta(orv_types::SubTableId::new(h.table.0, 0u32))
            .unwrap();
        let meta1 = md
            .chunk_meta(orv_types::SubTableId::new(h.table.0, 1u32))
            .unwrap();
        assert_ne!(meta0.node, meta1.node);
    }

    #[test]
    fn plume_field_is_smooth_and_in_range() {
        let grid = [64, 64, 4];
        for p in [[0u64, 0, 0], [10, 20, 1], [63, 63, 3]] {
            let v = plume_value(9, 0, grid, p);
            assert!((0.0..1.0).contains(&v), "{v}");
        }
        // Smoothness: neighbouring points differ far less than the full
        // range (noise is capped at 5%).
        let a = plume_value(9, 0, grid, [30, 30, 2]);
        let b = plume_value(9, 0, grid, [31, 30, 2]);
        assert!((a - b).abs() < 0.2, "{a} vs {b}");
        // Deterministic.
        assert_eq!(a, plume_value(9, 0, grid, [30, 30, 2]));
    }

    #[test]
    fn plume_chunks_have_informative_scalar_bounds() {
        use orv_types::Interval;
        let d = Deployment::in_memory(1);
        let h = generate_dataset(
            &DatasetSpec::builder("t")
                .grid([64, 64, 1])
                .partition([8, 8, 1])
                .scalar_attrs(&["wp"])
                .seed(5)
                .scalar_model(ScalarModel::Plume)
                .build(),
            &d,
        )
        .unwrap();
        // Some chunk must have a wp upper bound well below 1 — i.e. a
        // scalar predicate like wp >= 0.6 prunes it.
        let mut prunable = 0;
        let mut spans = Vec::new();
        d.metadata()
            .with_chunks(h.table, |chunks| {
                for c in chunks {
                    let iv = c.bbox.get("wp");
                    spans.push(iv.length());
                    if iv.hi < 0.6 {
                        prunable += 1;
                    }
                }
            })
            .unwrap();
        assert!(prunable > 0, "plume chunks must be prunable on wp");
        // And the R-tree + bbox path actually prunes them.
        let q = orv_types::BoundingBox::from_dims([("wp", Interval::new(0.6, 1.0))]);
        let matching = d.metadata().find_chunks(h.table, &q).unwrap();
        assert!(matching.len() < h.num_chunks() as usize);
        assert!(!matching.is_empty());
        // Contrast: uniform chunks span nearly the whole range.
        let du = Deployment::in_memory(1);
        let hu = generate_dataset(
            &DatasetSpec::builder("u")
                .grid([64, 64, 1])
                .partition([8, 8, 1])
                .scalar_attrs(&["wp"])
                .seed(5)
                .build(),
            &du,
        )
        .unwrap();
        let uniform_matching = du.metadata().find_chunks(hu.table, &q).unwrap();
        assert_eq!(uniform_matching.len(), hu.num_chunks() as usize);
    }

    #[test]
    fn duplicate_table_name_fails() {
        let d = Deployment::in_memory(1);
        let spec = DatasetSpec::builder("t1").build();
        generate_dataset(&spec, &d).unwrap();
        assert!(generate_dataset(&spec, &d).is_err());
    }
}
