//! A deployed storage cluster: per-node chunk stores + shared services.

use orv_chunk::format::ChunkStore;
use orv_chunk::{ExtractorRegistry, FileChunkStore, MemChunkStore};
use orv_metadata::MetadataService;
use orv_types::{Error, NodeId, Result};
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The storage side of a cluster: one chunk store per storage node, the
/// shared MetaData service, and the extractor registry.
///
/// Each store sits behind a `Mutex`, which also models the fact that a
/// node's single disk serializes its I/O.
///
/// Clones share all state (stores, catalog, extractors): federated
/// engine shards each hold a clone and see one storage cluster.
#[derive(Clone)]
pub struct Deployment {
    stores: Vec<Arc<Mutex<Box<dyn ChunkStore>>>>,
    metadata: Arc<MetadataService>,
    registry: Arc<RwLock<ExtractorRegistry>>,
    /// Durable count of chunk reads served by any BDS instance of this
    /// deployment — shared across clones, so federated shards all feed
    /// the same tally. A warm cache hit must not move this counter.
    chunk_reads: Arc<AtomicU64>,
}

impl Deployment {
    /// `n` storage nodes with in-memory chunk stores.
    pub fn in_memory(n: usize) -> Self {
        let stores = (0..n)
            .map(|_| {
                Arc::new(Mutex::new(
                    Box::new(MemChunkStore::new()) as Box<dyn ChunkStore>
                ))
            })
            .collect();
        Deployment {
            stores,
            metadata: Arc::new(MetadataService::new()),
            registry: Arc::new(RwLock::new(ExtractorRegistry::new())),
            chunk_reads: Arc::new(AtomicU64::new(0)),
        }
    }

    /// `n` storage nodes with real on-disk stores under
    /// `root/node<k>/`.
    pub fn on_disk(root: impl AsRef<Path>, n: usize) -> Result<Self> {
        let mut stores = Vec::with_capacity(n);
        for k in 0..n {
            let store = FileChunkStore::open(root.as_ref().join(format!("node{k}")))?;
            stores.push(Arc::new(Mutex::new(Box::new(store) as Box<dyn ChunkStore>)));
        }
        Ok(Deployment {
            stores,
            metadata: Arc::new(MetadataService::new()),
            registry: Arc::new(RwLock::new(ExtractorRegistry::new())),
            chunk_reads: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Persist this deployment's catalog (tables, chunks, join indices and
    /// layout sources) to a JSON file; pair with [`Deployment::reopen`].
    pub fn save_catalog(&self, path: impl AsRef<Path>) -> Result<()> {
        self.metadata.save_json(path)
    }

    /// Reopen an on-disk deployment from its data directory and a saved
    /// catalog: no data file is touched — chunk metadata, join indices and
    /// extractors (regenerated from persisted layout sources) come back
    /// exactly as saved. This is the framework's answer to DBMS ingestion
    /// cost: restarting costs one small JSON read.
    pub fn reopen(root: impl AsRef<Path>, n: usize, catalog: impl AsRef<Path>) -> Result<Self> {
        let metadata = Arc::new(MetadataService::load_json(catalog)?);
        let registry = Arc::new(RwLock::new(ExtractorRegistry::new()));
        {
            let mut reg = registry.write();
            for (_, source, coords) in metadata.layouts() {
                let desc = orv_layout::parse_layout(&source)?;
                let coord_refs: Vec<&str> = coords.iter().map(|s| s.as_str()).collect();
                reg.register(Arc::new(orv_chunk::LayoutExtractor::generate(
                    &desc,
                    &coord_refs,
                )?));
            }
        }
        let mut stores = Vec::with_capacity(n);
        for k in 0..n {
            let store = FileChunkStore::open(root.as_ref().join(format!("node{k}")))?;
            stores.push(Arc::new(Mutex::new(Box::new(store) as Box<dyn ChunkStore>)));
        }
        Ok(Deployment {
            stores,
            metadata,
            registry,
            chunk_reads: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Number of storage nodes.
    pub fn num_storage_nodes(&self) -> usize {
        self.stores.len()
    }

    /// The chunk store of one node.
    pub fn store(&self, node: NodeId) -> Result<&Arc<Mutex<Box<dyn ChunkStore>>>> {
        self.stores
            .get(node.index())
            .ok_or_else(|| Error::not_found(format!("storage node {node}")))
    }

    /// The shared MetaData service.
    pub fn metadata(&self) -> &Arc<MetadataService> {
        &self.metadata
    }

    /// The shared extractor registry.
    pub fn registry(&self) -> &Arc<RwLock<ExtractorRegistry>> {
        &self.registry
    }

    /// Chunk reads served so far, across every BDS instance and clone of
    /// this deployment. Regression tests use this to assert that a warm
    /// cache hit performs *zero* chunk reads.
    pub fn chunk_reads(&self) -> u64 {
        self.chunk_reads.load(Ordering::Relaxed)
    }

    /// The shared read tally, for BDS instances to report into.
    pub(crate) fn chunk_read_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.chunk_reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_deployment_shape() {
        let d = Deployment::in_memory(3);
        assert_eq!(d.num_storage_nodes(), 3);
        assert!(d.store(NodeId(2)).is_ok());
        assert!(d.store(NodeId(3)).is_err());
        assert_eq!(d.metadata().num_tables(), 0);
        assert!(d.registry().read().is_empty());
    }

    #[test]
    fn on_disk_deployment_creates_dirs() {
        let root = std::env::temp_dir().join(format!("orv-deploy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let d = Deployment::on_disk(&root, 2).unwrap();
        assert_eq!(d.num_storage_nodes(), 2);
        d.store(NodeId(0))
            .unwrap()
            .lock()
            .append("t.dat", b"abc")
            .unwrap();
        assert!(root.join("node0").join("t.dat").exists());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
