//! Randomized stress: arbitrary client mixes against the
//! [`QueryService`], checked against a sequential oracle.
//!
//! Two entry points share one engine:
//!
//! - a proptest that draws (seed, clients, rounds, pool sizing) and runs
//!   a full client mix per case;
//! - [`seeded_stress_from_env`], a heavier single round whose seed comes
//!   from `ORV_STRESS_SEED` — the chaos CI matrix drives it with each
//!   matrix seed so failures reproduce with one env var.
//!
//! Every wait goes through a watchdog timeout: a hang fails the test in
//! bounded time instead of wedging CI. Clients randomly execute, cancel
//! mid-flight, or attach ~expired deadlines; whatever the interleaving,
//! completed queries must match the oracle byte-for-byte, failed ones
//! must carry a cancellation error, and the admission / completion /
//! cache counters must balance once every ticket resolves.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::CancelToken;
use orv::join::reference::sort_records;
use orv::join::JoinAlgorithm;
use orv::query::{QueryEngine, QueryService, ServiceConfig};
use orv::types::{Error, Record};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Upper bound on any single ticket wait. A healthy query on this
/// workload takes milliseconds; hitting this means the service hung.
const WATCHDOG: Duration = Duration::from_secs(30);

const POOL: &[&str] = &[
    "SELECT * FROM v1",
    "SELECT * FROM v2",
    "SELECT * FROM v1 WHERE x IN [0, 3]",
    "SELECT * FROM t1 WHERE y IN [1, 5]",
    "SELECT COUNT(*), MAX(wp) FROM v2",
];

fn build_engine() -> QueryEngine {
    let d = Deployment::in_memory(1);
    for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([8, 8, 1])
                .partition([2, 2, 1])
                .scalar_attrs(&[scalar])
                .seed(seed)
                .build(),
            &d,
        )
        .expect("dataset generation");
    }
    let engine = QueryEngine::new(d).force_algorithm(Some(JoinAlgorithm::IndexedJoin));
    engine
        .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .expect("create v1");
    engine
        .execute("CREATE VIEW v2 AS SELECT * FROM t1 JOIN t2 ON (x, y)")
        .expect("create v2");
    engine
}

fn canonical(columns: Vec<String>, rows: Vec<Record>) -> (Vec<String>, Vec<Record>) {
    (columns, sort_records(rows))
}

/// SplitMix64 — a tiny deterministic PRNG so client scripts depend only
/// on the seed, never on platform RNG state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// What a client does with one scripted query.
#[derive(Clone, Copy, Debug)]
enum Action {
    /// Submit and wait for the result; must match the oracle.
    Execute,
    /// Submit, then cancel immediately; completion and cancellation are
    /// both legal outcomes of the race.
    CancelEarly,
    /// Submit with an (almost certainly) already-expired deadline.
    TightDeadline,
}

/// One full client-mix round. Returns after every ticket resolved, so
/// callers can assert global balances. Panics on oracle mismatch,
/// non-cancellation errors, or a watchdog hang.
fn stress_round(seed: u64, clients: usize, rounds: usize) {
    let oracle_engine = build_engine();
    let oracle: Arc<Vec<(Vec<String>, Vec<Record>)>> = Arc::new(
        POOL.iter()
            .map(|sql| {
                let r = oracle_engine.execute(sql).expect("oracle query");
                canonical(r.columns, r.rows)
            })
            .collect(),
    );

    let svc = Arc::new(
        QueryService::new(
            build_engine(),
            ServiceConfig {
                // Undersized on purpose: admission rejections are part
                // of the mix being stressed.
                workers: (clients / 2).max(1),
                queue_cap: clients.max(2),
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("service"),
    );

    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|client| {
            let svc = Arc::clone(&svc);
            let oracle = Arc::clone(&oracle);
            let barrier = Arc::clone(&barrier);
            let mut rng = Rng(seed ^ (client as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..rounds {
                    let idx = rng.below(POOL.len() as u64) as usize;
                    let action = match rng.below(4) {
                        0 => Action::CancelEarly,
                        1 => Action::TightDeadline,
                        _ => Action::Execute,
                    };
                    let submitted = match action {
                        Action::TightDeadline => svc.submit_with_token(
                            POOL[idx],
                            CancelToken::with_deadline(Duration::from_micros(rng.below(200))),
                        ),
                        _ => svc.submit(POOL[idx]),
                    };
                    let ticket = match submitted {
                        Ok(t) => t,
                        // Admission control rejecting under burst load
                        // is correct behaviour, not a failure.
                        Err(Error::Overloaded { .. }) => continue,
                        Err(other) => panic!("unexpected submit error: {other}"),
                    };
                    if matches!(action, Action::CancelEarly) {
                        ticket.cancel();
                    }
                    let result = ticket.wait_timeout(WATCHDOG).unwrap_or_else(|| {
                        panic!(
                            "watchdog: client {client} round {round} \
                                 ({action:?} on {:?}) hung > {WATCHDOG:?}",
                            POOL[idx]
                        )
                    });
                    match result {
                        Ok(r) => {
                            assert_eq!(
                                canonical(r.columns, r.rows),
                                oracle[idx],
                                "client {client} round {round} drifted on {:?}",
                                POOL[idx]
                            );
                        }
                        Err(e) => {
                            assert!(
                                e.is_cancellation(),
                                "client {client} round {round}: non-cancellation \
                                 failure under {action:?}: {e}"
                            );
                            assert!(
                                !matches!(action, Action::Execute),
                                "plain execute must never be cancelled: {e}"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let c = svc.counters();
    assert!(c.admission_balances(), "admission imbalance: {c:?}");
    assert!(c.completion_balances(), "completion imbalance: {c:?}");
    let cache = svc.engine().cache_stats();
    assert_eq!(
        cache.lookups(),
        cache.hits + cache.misses,
        "cache counter imbalance: {cache:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random client mixes: any seed, 1–6 clients, short scripts. Each
    /// case is one full service lifecycle (spawn, stress, drain, drop).
    #[test]
    fn random_client_mixes_match_the_oracle(
        seed in 0u64..1 << 32,
        clients in 1usize..6,
        rounds in 1usize..8,
    ) {
        stress_round(seed, clients, rounds);
    }
}

/// Heavier deterministic round for the chaos CI matrix: 8 clients, long
/// scripts, seed from `ORV_STRESS_SEED` (default 42). Reproduce any CI
/// failure locally with
/// `ORV_STRESS_SEED=<seed> cargo test --test service_stress seeded_stress_from_env`.
#[test]
fn seeded_stress_from_env() {
    let seed = std::env::var("ORV_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);
    stress_round(seed, 8, 12);
}

/// Key-collision stress against the bucketed cache: many clients hammer
/// a handful of keys. Single-flight must build every `(node, key)` pair
/// exactly once for the whole run (one generation — the cache is big
/// enough that nothing is ever evicted), and the per-shard counters
/// must sum exactly to the aggregate totals the un-sharded cache used
/// to report.
#[test]
fn key_collision_single_flight_and_shard_counter_balance() {
    use orv::chunk::SubTable;
    use orv::join::{CacheKey, CacheService, CachedEntry, BUCKETS_PER_NODE};
    use orv::types::{Schema, SubTableId, Value};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    const NODES: usize = 2;
    const KEYS: u32 = 4; // few keys...
    const CLIENTS: usize = 16; // ...many clients
    const ROUNDS: usize = 32;

    let svc = Arc::new(CacheService::new(NODES, 1 << 20));
    let entry = || {
        let schema = Arc::new(Schema::grid(&["x"], &["p"]).unwrap());
        let cols = vec![vec![Value::I32(0)], vec![Value::F32(0.0)]];
        CachedEntry::Right(Arc::new(
            SubTable::from_columns(SubTableId::new(0u32, 0u32), schema, cols).unwrap(),
        ))
    };
    // Builds per (node, key); single-flight means each lands on 1.
    let builds: Arc<Mutex<HashMap<(usize, u32), u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let calls = Arc::new(AtomicU64::new(0));

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let svc = Arc::clone(&svc);
            let builds = Arc::clone(&builds);
            let calls = Arc::clone(&calls);
            let barrier = Arc::clone(&barrier);
            let mut rng = Rng(0xc011_1de5 ^ (client as u64).wrapping_mul(0x9e37_79b9));
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    let c = rng.below(KEYS as u64) as u32;
                    let j = rng.below(NODES as u64) as usize;
                    let key = CacheKey::Right(SubTableId::new(0u32, c));
                    calls.fetch_add(1, Ordering::Relaxed);
                    svc.get_or_build(j, key, &CancelToken::none(), || {
                        *builds.lock().unwrap().entry((j, c)).or_insert(0) += 1;
                        Ok((entry(), 64))
                    })
                    .unwrap_or_else(|e| panic!("get_or_build failed: {e}"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let builds = builds.lock().unwrap();
    for (&(j, c), &n) in builds.iter() {
        assert_eq!(
            n, 1,
            "key c{c} on node {j} built {n} times in one generation"
        );
    }
    assert!(!builds.is_empty());

    let total = svc.stats();
    assert_eq!(total.evictions, 0, "one generation: nothing may be evicted");
    assert_eq!(
        total.misses,
        builds.len() as u64,
        "every miss is one build of a distinct (node, key)"
    );
    assert_eq!(
        total.hits + total.misses,
        calls.load(Ordering::Relaxed),
        "every call is either the builder or answered from the cache"
    );

    // Bucket counters decompose the node totals exactly.
    let per_shard = svc.shard_stats();
    assert_eq!(per_shard.len(), NODES * BUCKETS_PER_NODE);
    assert_eq!(per_shard.iter().map(|s| s.hits).sum::<u64>(), total.hits);
    assert_eq!(
        per_shard.iter().map(|s| s.misses).sum::<u64>(),
        total.misses
    );
    assert!(
        per_shard.iter().filter(|s| s.lookups() > 0).count() > 1,
        "collision script must still exercise more than one shard: {per_shard:?}"
    );
}
