//! Serving-path tracing acceptance: every query carries a propagated
//! trace ID from submit to resolve, phase attributions decompose its
//! latency, and the flight recorder retains the traces worth keeping.
//!
//! 1. A [`QueryService`] query mints a trace ID visible on the ticket and
//!    in the `trace_begin`/`trace_end` events; its completed
//!    [`QueryTrace`] attributes admission, queue-wait and exec phases
//!    that sum to no more than the end-to-end latency, and the per-phase
//!    `lat/*` histograms fill in.
//! 2. A federated query stitches into a single span tree: one root in
//!    group `fed`, one child per shard flight, every child's parent
//!    pointing at the root ID — and the tree round-trips through the
//!    recorder's JSON-lines dump byte-exactly.
//! 3. The recorder retains what matters: the seeded-slow (hedged) query
//!    ranks slowest, rejected submissions and strict-mode failures land
//!    in the anomaly ring.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::{FaultInjector, FaultPlan, ShardDeathSpec, ShardSlowSpec};
use orv::obs::{names, FlightRecorder, Obs, TraceOutcome};
use orv::query::{FederatedService, FederationConfig, QueryEngine, QueryService, ServiceConfig};
use orv::types::Error;
use std::time::Duration;

/// Upper bound on any single ticket wait (see `service_stress.rs`).
const WATCHDOG: Duration = Duration::from_secs(30);

fn deployment() -> Deployment {
    let d = Deployment::in_memory(2);
    generate_dataset(
        &DatasetSpec::builder("tt")
            .grid([8, 8, 2])
            .partition([2, 2, 1])
            .scalar_attrs(&["p"])
            .seed(31)
            .build(),
        &d,
    )
    .unwrap();
    d
}

#[test]
fn service_query_carries_trace_end_to_end() {
    let obs = Obs::enabled();
    let engine = QueryEngine::new(deployment()).with_obs(obs.clone());
    let svc = QueryService::new(engine, ServiceConfig::default()).unwrap();

    let sql = "SELECT COUNT(*) FROM tt";
    let ticket = svc.submit(sql).unwrap();
    let id = ticket.trace_id();
    ticket.wait_timeout(WATCHDOG).expect("watchdog").unwrap();

    // The resolved ticket hands back the completed trace, and it is the
    // same identity the ticket advertised at submit time.
    let trace = ticket.trace().expect("resolved ticket must carry a trace");
    assert_eq!(trace.trace, id);
    assert_eq!(trace.parent, None, "service roots have no parent");
    assert_eq!(trace.group, "service");
    assert_eq!(trace.detail, sql);
    assert_eq!(trace.outcome, TraceOutcome::Ok);

    // Phase attribution: the serving path decomposes into admission →
    // queue-wait → exec, and the parts cannot exceed the whole.
    let phases: Vec<&str> = trace.phases.iter().map(|(p, _)| p.as_str()).collect();
    assert_eq!(phases, ["admission", "queue_wait", "exec"]);
    assert!(trace.phases.iter().all(|&(_, s)| s >= 0.0));
    assert!(
        trace.phase_total_secs() <= trace.total_secs + 1e-6,
        "phases {:?} must sum to at most total {}",
        trace.phases,
        trace.total_secs
    );

    // The trace ID is propagated into the event log: begin/end events
    // carry it, and the engine's choice event is tagged with it.
    let begun = obs.events.events_of_kind(names::TRACE_BEGIN);
    assert_eq!(begun.len(), 1);
    assert_eq!(begun[0].fields["trace"].as_u64(), Some(id.raw()));
    assert_eq!(begun[0].fields["group"].as_str(), Some("service"));
    let ended = obs.events.events_of_kind(names::TRACE_END);
    assert_eq!(ended.len(), 1);
    assert_eq!(ended[0].fields["trace"].as_u64(), Some(id.raw()));
    assert_eq!(ended[0].fields["outcome"].as_str(), Some("ok"));

    // Per-phase latency histograms filled in, and quantiles are ordered.
    let snap = obs.metrics.snapshot();
    for name in [
        names::LAT_ADMISSION,
        names::LAT_QUEUE_WAIT,
        names::LAT_EXEC,
        names::LAT_TOTAL,
    ] {
        let h = snap
            .histograms
            .get(name)
            .unwrap_or_else(|| panic!("{name} must be recorded"));
        assert_eq!(h.count, 1, "{name}");
        assert!(h.p50().unwrap() <= h.p99().unwrap(), "{name}");
    }

    // The recorder kept the (only) query, keyed by the same trace ID.
    assert_eq!(svc.recorder().recorded(), 1);
    let slowest = svc.recorder().slowest();
    assert_eq!(slowest.len(), 1);
    assert_eq!(slowest[0], trace);
}

#[test]
fn rejected_submissions_land_in_the_anomaly_ring() {
    // workers = 0: nothing drains, so the second submission overflows the
    // one-slot queue deterministically.
    let svc = QueryService::new(
        QueryEngine::new(deployment()),
        ServiceConfig {
            workers: 0,
            queue_cap: 1,
            default_deadline: None,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let _held = svc.submit("SELECT COUNT(*) FROM tt").unwrap();
    let err = svc.submit("SELECT * FROM tt").unwrap_err();
    assert!(matches!(err, Error::Overloaded { .. }), "{err}");

    let anomalies = svc.recorder().anomalies();
    assert_eq!(anomalies.len(), 1, "the rejection must be recorded");
    assert_eq!(anomalies[0].outcome, TraceOutcome::Rejected);
    assert_eq!(anomalies[0].detail, "SELECT * FROM tt");
    assert!(svc.recorder().slowest().is_empty(), "rejections never rank");
}

#[test]
fn federated_query_stitches_into_one_span_tree() {
    let obs = Obs::enabled();
    let fed = FederatedService::with_instruments(
        deployment(),
        FederationConfig::default(),
        obs.clone(),
        None,
    )
    .unwrap();
    let sql = "SELECT * FROM tt";
    let got = fed.execute(sql).unwrap();
    assert!(got.is_complete());

    // One query → one recorded tree, rooted in the federation group.
    assert_eq!(fed.recorder().recorded(), 1);
    let root = fed.recorder().slowest().remove(0);
    assert_eq!(root.parent, None);
    assert_eq!(root.group, "fed");
    assert_eq!(root.detail, sql);
    assert_eq!(root.outcome, TraceOutcome::Ok);
    assert!(root.phases.iter().any(|(p, _)| p == "merge"));
    assert!(
        root.phase_total_secs() <= root.total_secs + 1e-6,
        "{:?} vs {}",
        root.phases,
        root.total_secs
    );

    // One child per shard touched: every child is a shard-group
    // sub-query whose parent is the root's trace ID, and no shard
    // contributes two flights in a fault-free run.
    assert!(!root.children.is_empty());
    let mut groups: Vec<&str> = root.children.iter().map(|c| c.group.as_str()).collect();
    groups.sort_unstable();
    let distinct = {
        let mut g = groups.clone();
        g.dedup();
        g
    };
    assert_eq!(groups, distinct, "one flight per shard touched: {groups:?}");
    for child in &root.children {
        assert!(child.group.starts_with("fed"), "{}", child.group);
        assert_ne!(child.group, "fed", "children are shard groups");
        assert_eq!(child.parent, Some(root.trace));
        assert_eq!(child.outcome, TraceOutcome::Ok);
        assert!(child.phases.iter().any(|(p, _)| p == "exec"));
        assert!(child.phase_total_secs() <= child.total_secs + 1e-6);
    }
    assert_eq!(root.tree_size(), 1 + root.children.len());

    // The event log tells the same story: one root begin, one begin per
    // child, and every non-root begin points back at the root ID.
    let begun = obs.events.events_of_kind(names::TRACE_BEGIN);
    let roots: Vec<_> = begun
        .iter()
        .filter(|e| e.fields["parent"].as_u64().is_none())
        .collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].fields["trace"].as_u64(), Some(root.trace.raw()));
    let child_begins: Vec<_> = begun
        .iter()
        .filter(|e| e.fields["parent"].as_u64().is_some())
        .collect();
    assert_eq!(child_begins.len(), root.children.len());
    for e in &child_begins {
        assert_eq!(e.fields["parent"].as_u64(), Some(root.trace.raw()));
    }

    // The recorder dump round-trips the whole tree byte-exactly, and the
    // rendered tree shows the stitched hierarchy.
    let parsed = FlightRecorder::from_json_lines(&fed.recorder().to_json_lines()).unwrap();
    assert_eq!(parsed, vec![root.clone()]);
    let rendered = root.render_tree();
    assert!(rendered.contains("fed"), "{rendered}");
    for child in &root.children {
        assert!(rendered.contains(child.group.as_str()), "{rendered}");
    }
}

#[test]
fn recorder_ranks_the_seeded_slow_query_first() {
    let obs = Obs::enabled();
    let plan = FaultPlan {
        shard_slows: vec![ShardSlowSpec {
            shard: 0,
            after_subqueries: 0,
            delay_ms: 2_000,
        }],
        ..FaultPlan::none()
    };
    let injector = FaultInjector::new_with_events(plan, obs.events.clone());
    let fed = FederatedService::with_instruments(
        deployment(),
        FederationConfig {
            hedge_after: Some(Duration::from_millis(40)),
            ..FederationConfig::default()
        },
        obs.clone(),
        Some(injector.clone()),
    )
    .unwrap();

    // First query hits the stalled shard and is rescued by a hedge after
    // ≥ 40ms; the follow-ups are ordinary fast scans.
    let slow_sql = "SELECT * FROM tt";
    assert!(fed.execute(slow_sql).unwrap().is_complete());
    assert_eq!(injector.stats().shard_slows, 1);
    for _ in 0..3 {
        assert!(fed
            .execute("SELECT COUNT(*) FROM tt")
            .unwrap()
            .is_complete());
    }

    assert_eq!(fed.recorder().recorded(), 4);
    let slowest = fed.recorder().slowest();
    assert_eq!(slowest[0].detail, slow_sql, "the hedged query ranks first");
    assert!(
        slowest[0].total_secs >= 0.040,
        "the stall dominates its latency: {}",
        slowest[0].total_secs
    );
    assert!(
        slowest[0].phases.iter().any(|(p, _)| p == "hedge_overhead"),
        "{:?}",
        slowest[0].phases
    );
    assert!(
        slowest
            .windows(2)
            .all(|w| w[0].total_secs >= w[1].total_secs),
        "slowest-first order"
    );
    let snap = obs.metrics.snapshot();
    assert!(snap.histograms[names::LAT_HEDGE].count >= 1);
}

#[test]
fn strict_mode_failure_is_retained_as_an_anomaly() {
    let plan = FaultPlan {
        shard_deaths: vec![
            ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            },
            ShardDeathSpec {
                shard: 1,
                after_subqueries: 0,
            },
        ],
        max_faults: 8,
        ..FaultPlan::none()
    };
    let fed = FederatedService::with_instruments(
        deployment(),
        FederationConfig {
            strict: true,
            ..FederationConfig::default()
        },
        Obs::enabled(),
        Some(FaultInjector::new(plan)),
    )
    .unwrap();
    let err = fed.execute("SELECT * FROM tt").unwrap_err();
    assert!(matches!(err, Error::Unavailable { .. }), "{err}");

    let anomalies = fed.recorder().anomalies();
    assert_eq!(anomalies.len(), 1);
    assert_eq!(anomalies[0].group, "fed");
    assert_eq!(anomalies[0].outcome, TraceOutcome::Error);
    // The failed tree still dumps: failure triage starts from this line.
    let parsed = FlightRecorder::from_json_lines(&fed.recorder().to_json_lines()).unwrap();
    assert!(parsed.iter().any(|t| t.outcome == TraceOutcome::Error));
}
