//! Differential oracle tier for the columnar execution path.
//!
//! Every query shape — full scan, range filter, projection, IJ join,
//! GH join, aggregation — runs through both execution paths:
//!
//! - the **legacy row path** (`scan_rows_reference`, per-row `project`,
//!   the nested-loop reference join), and
//! - the **batch path** (`scan_batches` + typed range filters +
//!   `ColumnBatch::project`, the columnar hash join inside both QES
//!   implementations),
//!
//! and the results must be *byte-identical*: equal `Record`s in equal
//! order where the path defines an order, equal as sorted multisets
//! where it does not, and equal [`rows_checksum`] fingerprints — the
//! same CRC the federation router uses to reject corrupted partials.
//!
//! Two entry points share the harness:
//!
//! - a proptest drawing (seed, grid sizing, range windows) — shrinking
//!   gives the smallest dataset that still disagrees;
//! - [`seeded_oracle_from_env`], one heavier deterministic case whose
//!   seed comes from `ORV_ORACLE_SEED` — the chaos CI matrix drives it
//!   with each matrix seed, so any failure reproduces with one env var.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::CancelToken;
use orv::join::reference::{nested_loop_join, sort_records};
use orv::join::JoinAlgorithm;
use orv::query::{exec, QueryEngine};
use orv::types::{BoundingBox, Interval, Record, TableId, Value};
use proptest::prelude::*;

/// SplitMix64, so every derived parameter is a pure function of the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded two-table deployment; grid and partitioning derived from the
/// seed so shapes vary across cases.
fn deploy(seed: u64) -> (Deployment, TableId, TableId) {
    let mut rng = Rng(seed);
    let side = [4u64, 8, 8, 16][rng.below(4) as usize];
    let part = [2u64, 4][rng.below(2) as usize];
    let d = Deployment::in_memory(1 + rng.below(2) as usize);
    for (name, scalar, tseed) in [("t1", "oilp", seed ^ 1), ("t2", "wp", seed ^ 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([side, side, 1])
                .partition([part, part, 1])
                .scalar_attrs(&[scalar])
                .seed(tseed)
                .build(),
            &d,
        )
        .expect("dataset generation");
    }
    let md = d.metadata();
    let t1 = md.table_id("t1").expect("t1");
    let t2 = md.table_id("t2").expect("t2");
    (d, t1, t2)
}

/// Assert two row vectors are byte-identical: same records in the same
/// order and the same federation checksum.
fn assert_identical(label: &str, reference: &[Record], batch: &[Record]) {
    assert_eq!(reference, batch, "{label}: rows diverged");
    assert_eq!(
        exec::rows_checksum(reference),
        exec::rows_checksum(batch),
        "{label}: checksums diverged on equal rows"
    );
}

/// Run every query shape through both paths for one seed.
fn oracle_case(seed: u64) {
    let (d, t1, t2) = deploy(seed);
    let mut rng = Rng(seed ^ 0x0c01_a11e);
    let cancel = CancelToken::none();

    // Shape 1: full scan.
    let (schema, ref_rows) = exec::scan_rows_reference(&d, t1, None, &cancel).expect("ref scan");
    let (_, batches) = exec::scan_batches(&d, t1, None, &cancel).expect("batch scan");
    let batch_rows = exec::batches_to_rows(&batches).expect("edge conversion");
    assert_identical("full scan", &ref_rows, &batch_rows);

    // Shape 2: range filter (drawn window; may be empty, full, or partial;
    // also exercises an attribute bound the schema lacks → unconstrained).
    let lo = rng.below(16) as f64;
    let hi = lo + rng.below(8) as f64;
    let mut range = BoundingBox::from_dims([
        ("x", Interval::new(lo, hi)),
        ("y", Interval::new(0.0, rng.below(16) as f64)),
    ]);
    if rng.below(2) == 0 {
        range.set("not_an_attr", Interval::new(0.0, 1.0));
    }
    let (_, ref_filtered) =
        exec::scan_rows_reference(&d, t1, Some(&range), &cancel).expect("ref filter");
    let (_, fbatches) = exec::scan_batches(&d, t1, Some(&range), &cancel).expect("batch filter");
    let batch_filtered = exec::batches_to_rows(&fbatches).expect("edge conversion");
    assert_identical("range filter", &ref_filtered, &batch_filtered);

    // Shape 3: projection (drawn column permutation, with repeats).
    let arity = schema.arity();
    let indices: Vec<usize> = (0..1 + rng.below(4) as usize)
        .map(|_| rng.below(arity as u64) as usize)
        .collect();
    let ref_projected: Vec<Record> = ref_rows.iter().map(|r| r.project(&indices)).collect();
    let batch_projected = exec::batches_to_rows(
        &batches
            .iter()
            .map(|b| b.project(&indices).expect("batch project"))
            .collect::<Vec<_>>(),
    )
    .expect("edge conversion");
    assert_identical("projection", &ref_projected, &batch_projected);

    // Shapes 4 + 5: IJ and GH joins vs the nested-loop row oracle.
    // Join output order is schedule-dependent, so compare as sorted
    // multisets — still byte-identical record-for-record.
    let join_oracle =
        sort_records(nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).expect("oracle join"));
    for algo in [JoinAlgorithm::IndexedJoin, JoinAlgorithm::GraceHash] {
        let engine = QueryEngine::new(d.clone()).force_algorithm(Some(algo));
        engine
            .execute("CREATE VIEW v AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
            .expect("create view");
        let got = engine.execute("SELECT * FROM v").expect("join query");
        let got_rows = sort_records(got.rows);
        assert_identical(&format!("{algo} join"), &join_oracle, &got_rows);
    }

    // Shape 6: aggregates — engine (batch-path scans underneath) vs
    // values computed from the reference rows.
    let engine = QueryEngine::new(d.clone());
    let agg = engine
        .execute("SELECT COUNT(*), MIN(oilp), MAX(oilp) FROM t1")
        .expect("aggregate query");
    assert_eq!(agg.rows.len(), 1);
    let oilp = schema.index_of("oilp").expect("oilp column");
    let expect_min = ref_rows
        .iter()
        .map(|r| r.get(oilp))
        .min()
        .expect("non-empty table");
    let expect_max = ref_rows.iter().map(|r| r.get(oilp)).max().expect("rows");
    assert_eq!(agg.rows[0].get(0), Value::I64(ref_rows.len() as i64));
    assert_eq!(agg.rows[0].get(1), expect_min, "MIN diverged");
    assert_eq!(agg.rows[0].get(2), expect_max, "MAX diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeds: each case is a fresh deployment and the full shape
    /// battery. Replay any failure with the printed seed.
    #[test]
    fn batch_path_matches_row_path(seed in 0u64..1 << 32) {
        oracle_case(seed);
    }
}

/// Deterministic heavy case for the CI matrix: seed from
/// `ORV_ORACLE_SEED` (default 42). Reproduce locally with
/// `ORV_ORACLE_SEED=<seed> cargo test --test columnar_oracle seeded_oracle_from_env`.
#[test]
fn seeded_oracle_from_env() {
    let seed = std::env::var("ORV_ORACLE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);
    oracle_case(seed);
    // A couple of derived seeds widen the net without a second binary.
    oracle_case(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    oracle_case(!seed);
}
