//! Overload-resilience acceptance: a seeded 2× client flood plus a
//! sustained slow-shard storm ([`FaultPlan::load_storm`]) against the
//! federation, checked for *clean degradation*:
//!
//! - every fully-admitted query comes back byte-identical to the
//!   single-engine oracle — overload may shed work, never corrupt it;
//! - everything shed is typed: `Error::Overloaded` (with a backoff
//!   hint), a cancellation error, or an exact `PartialResult` — no
//!   other failure mode may appear;
//! - admission and completion counters balance on every shard, and the
//!   service-level shed counter agrees with the `overload/shed_expired`
//!   metric;
//! - total retry issue (failovers + hedges + overload re-issues) stays
//!   within each shard's [`RetryBudget`] accounting bound;
//! - no query hangs: every wait is deadline-bounded well under the
//!   watchdog.
//!
//! A second, fully deterministic test (no worker threads) replays the
//! same scripted submission sequence twice and requires byte-identical
//! brownout transition logs. Property tests pin the three structural
//! invariants: deadline budgets shrink monotonically and never go
//! negative, a queue-expired query is never admitted to a worker, and
//! the brownout controller never oscillates within one cooldown window.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::{CancelToken, DeadlineBudget, FaultInjector, FaultPlan};
use orv::obs::{names, Obs, TraceOutcome};
use orv::query::{
    BrownoutController, FederatedService, FederationConfig, OverloadConfig, QueryEngine,
    QueryService, ServiceConfig,
};
use orv::types::Error;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Upper bound on any single query (see `service_stress.rs`). Every
/// query in this file carries a deadline far below it, so a hang shows
/// up as a typed deadline error long before CI times out.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Per-query deadline during the storm: generous against the seeded
/// 40–80 ms storm delays, tiny against the watchdog.
const QUERY_DEADLINE: Duration = Duration::from_secs(10);

const POOL: &[&str] = &[
    "SELECT COUNT(*) FROM t1",
    "SELECT * FROM t1 WHERE x IN [0, 3]",
    "SELECT oilp FROM t1 WHERE y IN [1, 5] ORDER BY oilp DESC LIMIT 9",
];

fn deployment() -> Deployment {
    let d = Deployment::in_memory(2);
    generate_dataset(
        &DatasetSpec::builder("t1")
            .grid([8, 8, 1])
            .partition([2, 2, 1])
            .scalar_attrs(&["oilp"])
            .seed(5)
            .build(),
        &d,
    )
    .expect("dataset generation");
    d
}

/// SplitMix64 (same as `service_stress.rs`): client scripts depend only
/// on the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Default)]
struct Tally {
    complete: AtomicU64,
    partial: AtomicU64,
    overloaded: AtomicU64,
    cancelled: AtomicU64,
}

/// One client's scripted queries against the federation; outcomes fold
/// into the shared tally, anything untyped panics the test.
#[allow(clippy::too_many_arguments)]
fn run_client(
    fed: &FederatedService,
    oracle: &[(Vec<String>, Vec<orv::types::Record>)],
    tally: &Tally,
    issued: &AtomicU64,
    seed: u64,
    client: u64,
    queries: u64,
    tight_deadlines: bool,
) {
    let mut rng = Rng(seed ^ client.wrapping_mul(0xa076_1d64_78bd_642f));
    for round in 0..queries {
        let idx = rng.below(POOL.len() as u64) as usize;
        // A slice of flood traffic carries deadlines the storm can
        // plausibly blow: those queries exercise the budget-expiry shed
        // path instead of waiting out the stall.
        let deadline = if tight_deadlines && rng.below(3) == 0 {
            Duration::from_millis(20 + rng.below(60))
        } else {
            QUERY_DEADLINE
        };
        let token = CancelToken::with_deadline(deadline);
        let outcome = fed.execute_with_token(POOL[idx], &token);
        issued.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(resp) if resp.is_complete() => {
                let r = resp.into_result();
                assert_eq!(
                    (r.columns, r.rows),
                    oracle[idx].clone(),
                    "client {client} round {round} drifted on {:?} under overload",
                    POOL[idx]
                );
                tally.complete.fetch_add(1, Ordering::Relaxed);
            }
            Ok(resp) => {
                let orv::query::FederatedResponse::Partial(p) = resp else {
                    unreachable!()
                };
                assert!(!p.missing_chunks.is_empty());
                assert!(p.completeness < 1.0);
                tally.partial.fetch_add(1, Ordering::Relaxed);
            }
            Err(Error::Overloaded { retry_after_ms, .. }) => {
                assert!(retry_after_ms > 0, "overload rejections must carry a hint");
                tally.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.is_cancellation() => {
                tally.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => panic!("client {client} round {round}: untyped failure under overload: {e}"),
        }
    }
}

/// One full seeded load-storm round. Seed comes from `ORV_OVERLOAD_SEED`
/// in the CI chaos matrix (default 7); reproduce any failure with
/// `ORV_OVERLOAD_SEED=<seed> cargo test --test overload_chaos seeded_load_storm`.
fn load_storm_round(seed: u64) {
    const BASELINE_CLIENTS: u64 = 3;
    const BASELINE_QUERIES: u64 = 8;
    let plan = FaultPlan::load_storm(seed, BASELINE_CLIENTS, 3);
    let flood = plan.client_floods[0].clone();
    let storm = plan.shard_slow_storms[0].clone();
    let obs = Obs::enabled();
    let injector = FaultInjector::new_with_events(plan, obs.events.clone());

    let oracle_engine = QueryEngine::new(deployment());
    let oracle: Vec<(Vec<String>, Vec<orv::types::Record>)> = POOL
        .iter()
        .map(|sql| {
            let r = oracle_engine.execute(sql).expect("oracle query");
            (r.columns, r.rows)
        })
        .collect();

    let fed = Arc::new(
        FederatedService::with_instruments(
            deployment(),
            FederationConfig {
                // Deliberately undersized so the doubled client load
                // actually saturates admission: one worker per shard and
                // a queue shorter than the peak client count.
                service: ServiceConfig {
                    workers: 1,
                    queue_cap: 4,
                    default_deadline: None,
                    ..ServiceConfig::default()
                },
                hedge_after: Some(Duration::from_millis(25)),
                ..FederationConfig::default()
            },
            obs.clone(),
            Some(injector.clone()),
        )
        .expect("federation"),
    );

    let tally = Arc::new(Tally::default());
    let issued = Arc::new(AtomicU64::new(0));
    let oracle = Arc::new(oracle);

    // Baseline clients start together; the flood is released once the
    // plan's `after_queries` baseline queries have been issued.
    let barrier = Arc::new(Barrier::new(BASELINE_CLIENTS as usize));
    let baseline: Vec<_> = (0..BASELINE_CLIENTS)
        .map(|client| {
            let fed = Arc::clone(&fed);
            let oracle = Arc::clone(&oracle);
            let tally = Arc::clone(&tally);
            let issued = Arc::clone(&issued);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                run_client(
                    &fed,
                    &oracle,
                    &tally,
                    &issued,
                    seed,
                    client,
                    BASELINE_QUERIES,
                    false,
                )
            })
        })
        .collect();
    while issued.load(Ordering::Relaxed) < flood.after_queries {
        std::thread::yield_now();
    }
    let flooders: Vec<_> = (0..flood.clients)
        .map(|client| {
            let fed = Arc::clone(&fed);
            let oracle = Arc::clone(&oracle);
            let tally = Arc::clone(&tally);
            let issued = Arc::clone(&issued);
            std::thread::spawn(move || {
                run_client(
                    &fed,
                    &oracle,
                    &tally,
                    &issued,
                    seed ^ 0x0f1d_beef,
                    1_000 + client,
                    flood.queries_per_client,
                    true,
                )
            })
        })
        .collect();
    for h in baseline.into_iter().chain(flooders) {
        h.join().expect("client thread");
    }

    // Every query resolved typed; nothing fell through to a panic.
    let total = tally.complete.load(Ordering::Relaxed)
        + tally.partial.load(Ordering::Relaxed)
        + tally.overloaded.load(Ordering::Relaxed)
        + tally.cancelled.load(Ordering::Relaxed);
    assert_eq!(
        total,
        BASELINE_CLIENTS * BASELINE_QUERIES + flood.clients * flood.queries_per_client,
        "every submission must resolve to a typed outcome"
    );
    assert!(
        tally.complete.load(Ordering::Relaxed) > 0,
        "the storm must not starve the service entirely"
    );
    assert!(
        injector.stats().shard_slow_storm_delays >= 1,
        "the seeded storm must have fired: {:?}",
        injector.stats()
    );
    assert!(
        injector.stats().shard_slow_storm_delays <= storm.storm_len,
        "storm window must close after storm_len sub-queries"
    );

    // Per-shard bookkeeping survives the stampede.
    let snap = obs.metrics.snapshot();
    let mut shed_total = 0;
    for s in 0..fed.num_shards() {
        let c = fed.shard(s).counters();
        assert!(c.admission_balances(), "shard {s} admission: {c:?}");
        assert!(c.completion_balances(), "shard {s} completion: {c:?}");
        shed_total += c.shed;
        // Retry accounting: grants never exceed what the budget's
        // capacity plus success refills can fund.
        let b = fed.retry_budget(s);
        assert!(
            b.granted() <= b.max_grants(c.completed),
            "shard {s}: {} grants exceed budget bound {} ({} completions)",
            b.granted(),
            b.max_grants(c.completed),
            c.completed
        );
    }
    // Counter agreement: the service shed counters and the overload
    // metric tell the same story.
    assert_eq!(
        snap.counters
            .get(names::OVERLOAD_SHED_EXPIRED)
            .copied()
            .unwrap_or(0),
        shed_total,
        "queue-expiry sheds must agree with the overload metric"
    );
    // Structural shed typing: rejections happened iff the shards
    // reported them, and anything shed after admission was queue-expiry
    // (counted above) or an explicit cancel — nothing silent.
    let rejected: u64 = (0..fed.num_shards())
        .map(|s| fed.shard(s).counters().rejected)
        .sum();
    if rejected > 0 {
        assert!(
            snap.counters.contains_key(names::OVERLOAD_BACKOFFS)
                || tally.overloaded.load(Ordering::Relaxed) > 0,
            "shard rejections must surface as backoffs or typed Overloaded: {:?}",
            snap.counters
        );
    }
}

#[test]
fn seeded_load_storm_degrades_cleanly() {
    let seed = std::env::var("ORV_OVERLOAD_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(7);
    load_storm_round(seed);
}

/// Deterministic brownout replay: one scripted submission sequence
/// against a workerless service (so queue depth is a pure function of
/// the script), run twice from the same seed — the rendered transition
/// logs must be byte-identical.
fn scripted_transition_log(seed: u64) -> (String, u64) {
    let svc = QueryService::new(
        QueryEngine::new(deployment()),
        ServiceConfig {
            workers: 0,
            queue_cap: 8,
            default_deadline: None,
            overload: OverloadConfig {
                // Tight hysteresis so a short script crosses every state.
                brownout_enter: 0.25,
                shed_enter: 0.75,
                recover: 0.125,
                cooldown_ticks: 2,
                // Classify everything cheap: this script exercises the
                // depth-driven state machine, not the cost classifier.
                fast_lane_max_secs: f64::MAX,
                ..OverloadConfig::default()
            },
        },
    )
    .expect("service");
    let mut rng = Rng(seed);
    let mut held = Vec::new();
    for _ in 0..64 {
        match rng.below(3) {
            // Push pressure: submit (tolerating the cap)…
            0 | 1 => {
                if let Ok(t) = svc.submit("SELECT COUNT(*) FROM t1") {
                    held.push(t);
                }
            }
            // …or relieve it: cancel the oldest queued ticket.
            _ => {
                if !held.is_empty() {
                    let t: orv::query::QueryTicket = held.remove(0);
                    t.cancel();
                    t.wait_timeout(WATCHDOG).expect("cancel resolves").ok();
                }
            }
        }
    }
    let log = svc.brownout().transition_log();
    let ticks = svc.brownout().tick();
    drop(held);
    (log, ticks)
}

#[test]
fn brownout_transition_log_replays_identically_from_seed() {
    let (log_a, ticks_a) = scripted_transition_log(0xdead_beef);
    let (log_b, ticks_b) = scripted_transition_log(0xdead_beef);
    assert_eq!(ticks_a, ticks_b, "tick clocks must agree");
    assert_eq!(
        log_a, log_b,
        "same seed, same script => byte-identical transition log"
    );
    assert!(
        !log_a.is_empty(),
        "the script must actually drive transitions"
    );
    // A different seed drives a different script; the controller is a
    // function of its observations, so the log (almost surely) differs.
    let (log_c, _) = scripted_transition_log(0x0bad_cafe);
    assert_ne!(log_a, log_c, "distinct scripts should leave distinct logs");
}

/// An overloaded shard is not a fault: the router backs off honoring the
/// rejection hint, never trips the breaker, and ultimately surfaces the
/// typed `Overloaded` error once attempts run out.
#[test]
fn route_whole_backs_off_on_overload_without_tripping_the_breaker() {
    let obs = Obs::enabled();
    let fed = FederatedService::with_instruments(
        deployment(),
        FederationConfig {
            service: ServiceConfig {
                workers: 0,
                queue_cap: 1,
                default_deadline: None,
                ..ServiceConfig::default()
            },
            ..FederationConfig::default()
        },
        obs.clone(),
        None,
    )
    .expect("federation");
    // Fill every shard's one-slot queue so whole-query routing meets
    // admission rejection everywhere.
    let held: Vec<_> = (0..fed.num_shards())
        .map(|s| {
            fed.shard(s)
                .submit("SELECT COUNT(*) FROM t1")
                .expect("queue filler")
        })
        .collect();
    // Views route whole; none is registered, but admission rejects
    // before the catalog is ever consulted, which is exactly the point.
    let err = fed
        .execute_with_token(
            "SELECT COUNT(*) FROM t1 JOIN t1 ON (x, y)",
            &CancelToken::with_deadline(WATCHDOG),
        )
        .expect_err("all shards saturated");
    assert!(matches!(err, Error::Overloaded { .. }), "{err}");
    let snap = obs.metrics.snapshot();
    assert!(
        snap.counters.get(names::OVERLOAD_BACKOFFS).copied() >= Some(1),
        "the router must back off on the hint: {:?}",
        snap.counters
    );
    assert!(
        !snap.counters.contains_key(names::FED_TRIPS),
        "overload must not trip breakers: {:?}",
        snap.counters
    );
    assert!(
        !snap.counters.contains_key(names::FED_SHARD_ERRORS),
        "overload must not count as a shard fault: {:?}",
        snap.counters
    );
    for t in held {
        t.cancel();
        t.wait_timeout(WATCHDOG).expect("drain").ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Deadline budgets are monotone non-increasing across hops and
    /// never negative, whatever the margins.
    #[test]
    fn deadline_budgets_shrink_monotonically(
        total_ms in 1u64..10_000,
        margins in proptest::collection::vec(0u64..5_000, 1..8),
    ) {
        let root = DeadlineBudget::root(Duration::from_millis(total_ms));
        let mut prev = root;
        for m in margins {
            let next = prev.shrink(Duration::from_millis(m));
            prop_assert!(
                next.hard_deadline() <= prev.hard_deadline(),
                "a hop may never extend the deadline"
            );
            // `remaining` saturates at zero — a Duration cannot go
            // negative, and an oversized margin must not panic.
            prop_assert!(next.remaining() <= prev.remaining());
            prev = next;
        }
    }

    /// A query whose deadline expired while queued is never admitted to
    /// a worker: it resolves as `Shed` with queue-wait-only phases, and
    /// the completion counters agree.
    #[test]
    fn queue_expired_queries_never_reach_a_worker(
        n in 1usize..6,
        workers in 1usize..3,
    ) {
        let svc = QueryService::new(
            QueryEngine::new(deployment()),
            ServiceConfig {
                workers,
                queue_cap: 8,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("service");
        let tickets: Vec<_> = (0..n)
            .map(|_| {
                svc.submit_with_token(
                    "SELECT COUNT(*) FROM t1",
                    CancelToken::with_deadline(Duration::ZERO),
                )
                .expect("admission is deadline-blind")
            })
            .collect();
        for t in tickets {
            let r = t.wait_timeout(WATCHDOG).expect("watchdog");
            prop_assert!(matches!(r, Err(Error::DeadlineExceeded)), "{r:?}");
            let trace = t.trace().expect("resolved trace");
            prop_assert_eq!(trace.outcome, TraceOutcome::Shed);
            let phases: Vec<&str> =
                trace.phases.iter().map(|(p, _)| p.as_str()).collect();
            prop_assert!(
                !phases.contains(&"exec"),
                "a shed query must never execute: {phases:?}"
            );
        }
        let c = svc.counters();
        prop_assert_eq!(c.shed, n as u64);
        prop_assert_eq!(c.completed, 0);
        prop_assert!(c.completion_balances(), "{:?}", c);
    }

    /// Whatever depth sequence arrives, the brownout controller moves at
    /// most one severity step per transition and never transitions twice
    /// within one cooldown window.
    #[test]
    fn brownout_hysteresis_never_oscillates_within_cooldown(
        depths in proptest::collection::vec(0usize..64, 1..200),
        cooldown in 1u64..32,
    ) {
        let cfg = OverloadConfig {
            cooldown_ticks: cooldown,
            ..OverloadConfig::default()
        };
        let ctl = BrownoutController::new(cfg, 32);
        for d in depths {
            ctl.observe(d);
        }
        let ts = ctl.transitions();
        for w in ts.windows(2) {
            prop_assert!(
                w[1].tick - w[0].tick >= cooldown,
                "transitions {} and {} violate the {}-tick cooldown",
                w[0].render(),
                w[1].render(),
                cooldown
            );
        }
        for t in &ts {
            let from = t.from.severity() as i64;
            let to = t.to.severity() as i64;
            prop_assert_eq!((from - to).abs(), 1, "single-step transitions only");
        }
    }
}
