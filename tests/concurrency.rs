//! Deterministic concurrency harness for the [`QueryService`].
//!
//! Drives seeded client threads through scripted schedules — full-load
//! oracle comparison, barrier-stepped admission, queued and mid-flight
//! cancellation, cache-thrash interleavings — and asserts that every
//! result equals the single-threaded oracle and that every counter
//! balances:
//!
//! ```text
//! submitted    == admitted + rejected
//! admitted     == completed + cancelled      (once all tickets resolve)
//! cache hits + cache misses == cache lookups
//! ```
//!
//! All schedules are deterministic: client scripts come from a seeded
//! LCG, blocking points are real rendezvous (channels occupying a cache
//! key via single-flight), and wall-clock only enters the `< 2 s`
//! cancellation-latency assertions, never control flow.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::CancelToken;
use orv::join::reference::sort_records;
use orv::join::{left_key_tag, CacheKey, JoinAlgorithm};
use orv::query::{QueryEngine, QueryService, ServiceConfig};
use orv::types::{Error, Record, SubTableId};
use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Queued or running, a cancelled query's ticket must resolve faster
/// than this (the acceptance bound; the real latency is one 250 ms
/// sleep slice at worst).
const CANCEL_BOUND: Duration = Duration::from_secs(2);

/// Build a fresh engine over two 16×16 tables with two join views.
///
/// Everything is seeded, so two calls produce engines with identical
/// data — one serves concurrent clients, the other is the sequential
/// oracle.
fn build_engine(cache_bytes: Option<u64>) -> QueryEngine {
    let d = Deployment::in_memory(1);
    for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([16, 16, 1])
                .partition([4, 4, 1])
                .scalar_attrs(&[scalar])
                .seed(seed)
                .build(),
            &d,
        )
        .expect("dataset generation");
    }
    let mut engine = QueryEngine::new(d).force_algorithm(Some(JoinAlgorithm::IndexedJoin));
    if let Some(bytes) = cache_bytes {
        engine = engine.with_cache_capacity(bytes);
    }
    engine
        .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .expect("create v1");
    engine
        .execute("CREATE VIEW v2 AS SELECT * FROM t1 JOIN t2 ON (x, y)")
        .expect("create v2");
    engine
}

/// The query mix the seeded clients draw from: unconstrained and
/// constrained view scans, base-table ranges and an aggregation.
const POOL: &[&str] = &[
    "SELECT * FROM v1",
    "SELECT * FROM v2",
    "SELECT * FROM v1 WHERE x IN [0, 7]",
    "SELECT * FROM v2 WHERE y IN [4, 11]",
    "SELECT * FROM t1 WHERE x IN [2, 9]",
    "SELECT COUNT(*), MIN(oilp) FROM v1",
];

/// Deterministic per-client script: `rounds` indices into [`POOL`].
fn client_script(seed: u64, rounds: usize) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..rounds)
        .map(|_| {
            // SplitMix64 step — stable across platforms.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as usize % POOL.len()
        })
        .collect()
}

/// Canonical form of a result for byte-identical comparison: columns
/// plus rows sorted into the reference order.
fn canonical(columns: Vec<String>, rows: Vec<Record>) -> (Vec<String>, Vec<Record>) {
    (columns, sort_records(rows))
}

/// Tentpole scenario: 8 seeded clients hammer one service; every result
/// must be byte-identical to the sequential oracle and every counter
/// must balance afterwards.
#[test]
fn eight_clients_match_the_sequential_oracle() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 6;

    // Sequential oracle over an identical (seeded) engine.
    let oracle_engine = build_engine(None);
    let oracle: Vec<(Vec<String>, Vec<Record>)> = POOL
        .iter()
        .map(|sql| {
            let r = oracle_engine.execute(sql).expect("oracle query");
            canonical(r.columns, r.rows)
        })
        .collect();
    let oracle = Arc::new(oracle);

    let svc = Arc::new(
        QueryService::new(
            build_engine(None),
            ServiceConfig {
                workers: 4,
                queue_cap: 64,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("service"),
    );

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let svc = Arc::clone(&svc);
            let oracle = Arc::clone(&oracle);
            let barrier = Arc::clone(&barrier);
            let script = client_script(client as u64, ROUNDS);
            std::thread::spawn(move || {
                barrier.wait();
                for idx in script {
                    let r = svc.execute(POOL[idx]).expect("client query");
                    let got = canonical(r.columns, r.rows);
                    assert_eq!(
                        got, oracle[idx],
                        "client {client} drifted from the oracle on {:?}",
                        POOL[idx]
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let c = svc.counters();
    assert!(c.admission_balances(), "admission imbalance: {c:?}");
    assert!(c.completion_balances(), "completion imbalance: {c:?}");
    assert_eq!(c.submitted, (CLIENTS * ROUNDS) as u64);
    assert_eq!(c.rejected, 0, "queue_cap 64 must never reject 8 clients");
    assert_eq!(c.cancelled, 0);
    assert_eq!(c.completed, c.submitted);

    let cache = svc.engine().cache_stats();
    assert_eq!(cache.lookups(), cache.hits + cache.misses);
    assert!(cache.hits > 0, "warm clients must hit the shared cache");
}

/// Barrier-stepped admission: 8 clients submit simultaneously into a
/// workers=0, cap=5 service. Exactly 5 are admitted, 3 are rejected
/// with the typed [`Error::Overloaded`], and cancelling the queued
/// tickets resolves each with [`Error::Cancelled`] in well under 2 s.
#[test]
fn barrier_stepped_admission_rejects_past_the_cap() {
    const CLIENTS: usize = 8;
    const CAP: usize = 5;

    let svc = Arc::new(
        QueryService::new(
            build_engine(None),
            ServiceConfig {
                workers: 0, // admission only: nothing ever drains the queue
                queue_cap: CAP,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("service"),
    );

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                svc.submit("SELECT * FROM v1")
            })
        })
        .collect();

    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for h in handles {
        match h.join().expect("submitter thread") {
            Ok(t) => tickets.push(t),
            Err(Error::Overloaded { queued, cap, .. }) => {
                assert_eq!(cap, CAP, "rejection must report the configured cap");
                assert!(
                    queued >= cap,
                    "rejection with {queued} queued under cap {cap}"
                );
                rejected += 1;
            }
            Err(other) => panic!("expected Overloaded, got {other}"),
        }
    }
    assert_eq!(tickets.len(), CAP, "exactly queue_cap submissions admitted");
    assert_eq!(rejected, CLIENTS - CAP);

    // Nothing runs (workers = 0), so every ticket is still pending…
    for t in &tickets {
        assert!(
            t.wait_timeout(Duration::from_millis(50)).is_none(),
            "no worker exists, yet a ticket resolved"
        );
    }
    // …and cancelling a queued ticket resolves it immediately.
    for t in tickets {
        let started = Instant::now();
        t.cancel();
        let err = t.wait().expect_err("cancelled queued query must fail");
        assert!(
            matches!(err, Error::Cancelled),
            "expected Cancelled, got {err}"
        );
        assert!(
            started.elapsed() < CANCEL_BOUND,
            "queued cancellation took {:?}",
            started.elapsed()
        );
    }

    let c = svc.counters();
    assert!(c.admission_balances(), "admission imbalance: {c:?}");
    assert!(c.completion_balances(), "completion imbalance: {c:?}");
    assert_eq!(
        (
            c.submitted,
            c.admitted,
            c.rejected,
            c.completed,
            c.cancelled
        ),
        (8, 5, 3, 0, 5)
    );
}

/// Scripted cancellation schedule against a single-worker service whose
/// worker is pinned mid-flight.
///
/// A helper thread occupies the first left-build cache key through the
/// single-flight path (its builder blocks on a channel), so the worker's
/// first query waits cancellably inside the Caching Service — a real
/// mid-flight block, not a sleep. Then:
///
/// 1. cancelling a *queued* query behind the busy worker resolves
///    `Error::Cancelled` in < 2 s without a worker touching it;
/// 2. cancelling the *running* query unwinds it within a sleep slice;
/// 3. once the key is released, a fresh query completes, proving the
///    single-flight slot was cleanly surrendered.
#[test]
fn queued_and_midflight_cancellation_resolve_quickly() {
    let svc = Arc::new(
        QueryService::new(
            build_engine(None),
            ServiceConfig {
                workers: 1,
                queue_cap: 8,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("service"),
    );

    // The first key an unconstrained v1 scan builds: the lexicographically
    // smallest left sub-table on compute node 0, tagged with the view's
    // join attributes.
    let md = svc.engine().deployment().metadata();
    let t1 = md.table_id("t1").expect("t1 registered");
    let first_chunk = md
        .all_chunks(t1)
        .expect("t1 chunks")
        .into_iter()
        .min()
        .expect("t1 has chunks");
    let key = CacheKey::Left(
        SubTableId::new(t1, first_chunk),
        left_key_tag(&["x", "y", "z"], 1),
    );

    // Occupy the key: the blocker becomes the single-flight builder and
    // parks on a channel until the script releases it.
    let cache = svc.engine().shared_cache();
    let (occupied_tx, occupied_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let blocker = std::thread::spawn(move || {
        let res = cache.get_or_build(0, key, &CancelToken::none(), || {
            // Runs only once this thread owns the single-flight slot.
            occupied_tx.send(()).expect("occupied signal");
            release_rx.recv().expect("release signal");
            // Surrender the slot without publishing an entry; waiters
            // re-run the lookup and one of them becomes the builder.
            Err(Error::Cluster("blocker released".into()))
        });
        assert!(res.is_err(), "the blocking builder must not cache anything");
    });

    occupied_rx.recv().expect("blocker owns the key");

    // q1 occupies the only worker and blocks on the key; q2 queues.
    let q1 = svc.submit("SELECT * FROM v1").expect("submit q1");
    let q2 = svc.submit("SELECT * FROM v1").expect("submit q2");
    assert!(
        q1.wait_timeout(Duration::from_millis(300)).is_none(),
        "q1 must be pinned on the occupied cache key"
    );

    // (1) queued cancellation: resolved by the canceller, not a worker.
    let started = Instant::now();
    q2.cancel();
    let err = q2.wait().expect_err("cancelled queued query must fail");
    assert!(matches!(err, Error::Cancelled), "got {err}");
    assert!(
        started.elapsed() < CANCEL_BOUND,
        "queued cancellation took {:?}",
        started.elapsed()
    );

    // (2) mid-flight cancellation: the waiter inside get_or_build
    // notices the token within one sleep slice.
    let started = Instant::now();
    q1.cancel();
    let err = q1.wait().expect_err("cancelled running query must fail");
    assert!(err.is_cancellation(), "got {err}");
    assert!(
        started.elapsed() < CANCEL_BOUND,
        "mid-flight cancellation took {:?}",
        started.elapsed()
    );

    // (3) release the key; the service must serve fresh queries again.
    release_tx.send(()).expect("release blocker");
    blocker.join().expect("blocker thread");
    let oracle = build_engine(None)
        .execute("SELECT * FROM v1")
        .expect("oracle");
    let r = svc.execute("SELECT * FROM v1").expect("post-release query");
    assert_eq!(
        canonical(r.columns, r.rows),
        canonical(oracle.columns, oracle.rows),
        "post-release result drifted"
    );

    let c = svc.counters();
    assert!(c.admission_balances(), "admission imbalance: {c:?}");
    assert!(c.completion_balances(), "completion imbalance: {c:?}");
    assert_eq!(
        (
            c.submitted,
            c.admitted,
            c.rejected,
            c.completed,
            c.cancelled
        ),
        (3, 3, 0, 1, 2)
    );
}

/// Cache-thrash interleaving: a cache far too small for either view's
/// working set forces constant evictions while two views with the same
/// left sub-tables but *different* join-attribute tags interleave.
/// Results must still match the oracle (no cross-view key aliasing) and
/// the cache counters must balance.
#[test]
fn cache_thrash_interleaving_stays_correct() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 4;

    let oracle_engine = build_engine(None);
    let oracle: Vec<(Vec<String>, Vec<Record>)> = ["SELECT * FROM v1", "SELECT * FROM v2"]
        .iter()
        .map(|sql| {
            let r = oracle_engine.execute(sql).expect("oracle query");
            canonical(r.columns, r.rows)
        })
        .collect();
    let oracle = Arc::new(oracle);

    // ~2 KiB: a handful of sub-tables at most, so interleaved v1/v2
    // scans continuously evict each other's entries.
    let svc = Arc::new(
        QueryService::new(
            build_engine(Some(2048)),
            ServiceConfig {
                workers: CLIENTS,
                queue_cap: 32,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("service"),
    );

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let svc = Arc::clone(&svc);
            let oracle = Arc::clone(&oracle);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // Alternate views out of phase across clients so
                    // every round interleaves both tags over the same
                    // left sub-tables.
                    let idx = (client + round) % 2;
                    let sql = ["SELECT * FROM v1", "SELECT * FROM v2"][idx];
                    let r = svc.execute(sql).expect("client query");
                    assert_eq!(
                        canonical(r.columns, r.rows),
                        oracle[idx],
                        "client {client} round {round} drifted on {sql}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let c = svc.counters();
    assert!(c.admission_balances(), "admission imbalance: {c:?}");
    assert!(c.completion_balances(), "completion imbalance: {c:?}");
    assert_eq!(c.completed, (CLIENTS * ROUNDS) as u64);

    let cache = svc.engine().cache_stats();
    assert_eq!(cache.lookups(), cache.hits + cache.misses);
    assert!(
        cache.evictions > 0,
        "a 2 KiB cache must thrash under interleaved views: {cache:?}"
    );
}

/// Dropping the service with queued work cancels the queue instead of
/// hanging or leaking tickets: every outstanding ticket resolves as
/// cancelled and the counters still balance.
#[test]
fn drop_with_queued_work_cancels_cleanly() {
    let svc = QueryService::new(
        build_engine(None),
        ServiceConfig {
            workers: 0,
            queue_cap: 4,
            default_deadline: None,
            ..ServiceConfig::default()
        },
    )
    .expect("service");

    let tickets: Vec<_> = (0..4)
        .map(|_| svc.submit("SELECT * FROM v1").expect("submit"))
        .collect();
    let counters_handle = {
        // Counters survive on the tickets' shared inner past the drop.
        let t = &tickets[0];
        t.cancel_token() // keep a token alive; exercises the accessor
    };
    drop(svc);
    for t in tickets {
        let err = t.wait().expect_err("drained ticket must be cancelled");
        assert!(matches!(err, Error::Cancelled), "got {err}");
    }
    // The kept token reports cancelled state once the queue drained it.
    assert!(counters_handle.check().is_err());
}

/// Catalog snapshot consistency under concurrent publishes: a reader
/// holding an old epoch's snapshot sees exactly the views of that
/// epoch, forever — a writer registering new views publishes fresh
/// snapshots without mutating any outstanding one — and the epoch
/// history replays every intermediate catalog.
#[test]
fn catalog_snapshots_survive_concurrent_publishes() {
    const WRITES: usize = 24;
    const READERS: usize = 4;

    let engine = Arc::new(build_engine(None));
    let v0 = engine.catalog_version();
    let snapshot0 = engine.catalog();
    let mut names0 = snapshot0.names();
    names0.sort();
    assert_eq!(names0, vec!["v1".to_string(), "v2".to_string()]);

    let barrier = Arc::new(Barrier::new(READERS + 1));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            let names0 = names0.clone();
            std::thread::spawn(move || {
                // Pin a snapshot before any write lands, then keep
                // re-reading it while the writer publishes: an epoch
                // snapshot must never change underneath its holder.
                let pinned = engine.catalog();
                let pinned_version = engine.catalog_version();
                barrier.wait();
                loop {
                    let mut held = pinned.names();
                    held.sort();
                    assert_eq!(held, names0, "pinned snapshot mutated");
                    // Fresh loads are monotonic and internally
                    // consistent: every name the old epoch had is still
                    // registered in any later epoch.
                    let fresh = engine.catalog();
                    for n in &held {
                        assert!(fresh.get(n).is_some(), "view {n} vanished");
                    }
                    if engine.catalog_version() >= pinned_version + WRITES as u64 {
                        return pinned_version;
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    barrier.wait();
    for k in 0..WRITES {
        engine
            .execute(&format!(
                "CREATE VIEW w{k} AS SELECT * FROM t1 JOIN t2 ON (x, y)"
            ))
            .unwrap_or_else(|e| panic!("create w{k}: {e}"));
    }

    for r in readers {
        let pinned_version = r.join().expect("reader thread");
        assert!(pinned_version >= v0);
    }

    // The old epoch replays exactly: same views as the pinned snapshot.
    let replay = engine
        .catalog_at_version(v0)
        .expect("epoch history retains v0");
    let mut replayed = replay.names();
    replayed.sort();
    assert_eq!(replayed, names0);
    assert_eq!(engine.catalog_version(), v0 + WRITES as u64);
    // And the current epoch has everything.
    assert_eq!(engine.catalog().names().len(), names0.len() + WRITES);
}

/// Cancelling a query that is mid-flight while a writer storms the
/// catalog with publishes must still resolve within the cancellation
/// bound: catalog publishes never hold a lock a query's cancellation
/// path could block on.
#[test]
fn cancel_during_catalog_publish_resolves_quickly() {
    let svc = Arc::new(
        QueryService::new(
            build_engine(None),
            ServiceConfig {
                workers: 1,
                queue_cap: 8,
                default_deadline: None,
                ..ServiceConfig::default()
            },
        )
        .expect("service"),
    );

    // Pin the only worker on an occupied single-flight key, exactly as
    // the mid-flight cancellation test does.
    let md = svc.engine().deployment().metadata();
    let t1 = md.table_id("t1").expect("t1 registered");
    let first_chunk = md
        .all_chunks(t1)
        .expect("t1 chunks")
        .into_iter()
        .min()
        .expect("t1 has chunks");
    let key = CacheKey::Left(
        SubTableId::new(t1, first_chunk),
        left_key_tag(&["x", "y", "z"], 1),
    );
    let cache = svc.engine().shared_cache();
    let (occupied_tx, occupied_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let blocker = std::thread::spawn(move || {
        let res = cache.get_or_build(0, key, &CancelToken::none(), || {
            occupied_tx.send(()).expect("occupied signal");
            release_rx.recv().expect("release signal");
            Err(Error::Cluster("blocker released".into()))
        });
        assert!(res.is_err());
    });
    occupied_rx.recv().expect("blocker owns the key");

    let q1 = svc.submit("SELECT * FROM v1").expect("submit q1");
    assert!(
        q1.wait_timeout(Duration::from_millis(300)).is_none(),
        "q1 must be pinned on the occupied cache key"
    );

    // Writer storm: publish views as fast as possible until told to stop.
    let publishing = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let writer = {
        let svc = Arc::clone(&svc);
        let publishing = Arc::clone(&publishing);
        std::thread::spawn(move || {
            let mut k = 0usize;
            while publishing.load(std::sync::atomic::Ordering::Relaxed) {
                svc.engine()
                    .execute(&format!(
                        "CREATE VIEW storm{k} AS SELECT * FROM t1 JOIN t2 ON (x, y)"
                    ))
                    .expect("storm view");
                k += 1;
            }
            k
        })
    };

    let started = Instant::now();
    q1.cancel();
    let err = q1.wait().expect_err("cancelled running query must fail");
    assert!(err.is_cancellation(), "got {err}");
    assert!(
        started.elapsed() < CANCEL_BOUND,
        "cancellation under publish storm took {:?}",
        started.elapsed()
    );

    publishing.store(false, std::sync::atomic::Ordering::Relaxed);
    let published = writer.join().expect("writer thread");
    assert!(published > 0, "the writer must actually have published");
    release_tx.send(()).expect("release blocker");
    blocker.join().expect("blocker thread");
}
