//! Property test: for arbitrary grid/partition shapes, node counts and
//! configurations, the distributed Indexed Join and Grace Hash produce
//! exactly the nested-loop oracle's result multiset.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::join::reference::{nested_loop_join, sort_records};
use orv::join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};
use orv::join::{LruCache, SchedulePolicy};
use proptest::prelude::*;

/// Small power-of-two divisor of `n`.
fn divisors_of(n: u64) -> Vec<u64> {
    (0..=n.trailing_zeros()).map(|k| 1u64 << k).collect()
}

fn shapes() -> impl Strategy<Value = ([u64; 3], [u64; 3], [u64; 3])> {
    // Grids up to 16×16×4, partitions arbitrary power-of-two divisors.
    (1u32..=4, 1u32..=4, 0u32..=2).prop_flat_map(|(lx, ly, lz)| {
        let grid = [1u64 << lx, 1u64 << ly, 1u64 << lz];
        let part = |g: u64| proptest::sample::select(divisors_of(g));
        (
            Just(grid),
            (part(grid[0]), part(grid[1]), part(grid[2])).prop_map(|(a, b, c)| [a, b, c]),
            (part(grid[0]), part(grid[1]), part(grid[2])).prop_map(|(a, b, c)| [a, b, c]),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ij_gh_and_oracle_agree(
        (grid, p1, p2) in shapes(),
        storage_nodes in 1usize..4,
        compute_nodes in 1usize..4,
        cache_bytes in prop_oneof![Just(0u64), Just(256u64), Just(1u64 << 30)],
        policy in prop_oneof![
            Just(SchedulePolicy::TwoStageLexicographic),
            Just(SchedulePolicy::PairRoundRobin),
            Just(SchedulePolicy::RandomPairOrder(3)),
        ],
        seed in 0u64..1000,
    ) {
        let deployment = Deployment::in_memory(storage_nodes);
        let h1 = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid(grid)
                .partition(p1)
                .scalar_attrs(&["a"])
                .seed(seed)
                .build(),
            &deployment,
        )
        .unwrap();
        let h2 = generate_dataset(
            &DatasetSpec::builder("t2")
                .grid(grid)
                .partition(p2)
                .scalar_attrs(&["b"])
                .seed(seed + 1)
                .build(),
            &deployment,
        )
        .unwrap();
        let attrs = ["x", "y", "z"];

        let oracle = sort_records(
            nested_loop_join(&deployment, h1.table, h2.table, &attrs, None).unwrap(),
        );
        prop_assert_eq!(oracle.len() as u64, h1.total_tuples());

        let ij = indexed_join(
            &deployment,
            h1.table,
            h2.table,
            &attrs,
            &IndexedJoinConfig {
                n_compute: compute_nodes,
                cache_capacity: cache_bytes,
                policy,
                collect_results: true,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert_eq!(&sort_records(ij.records.unwrap()), &oracle);

        let gh = grace_hash_join(
            &deployment,
            h1.table,
            h2.table,
            &attrs,
            &GraceHashConfig {
                n_compute: compute_nodes,
                mem_per_node: 512, // force several buckets
                collect_results: true,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert_eq!(&sort_records(gh.records.unwrap()), &oracle);
    }

    #[test]
    fn lru_cache_never_exceeds_capacity_and_counts_consistently(
        capacity in 1u64..64,
        ops in proptest::collection::vec((0u32..24, 1u64..16), 1..200),
    ) {
        let mut cache: LruCache<u32, u64> = LruCache::new(capacity);
        let mut lookups = 0u64;
        for (key, size) in ops {
            if cache.get(&key).is_none() {
                cache.put(key, size, size);
            }
            lookups += 1;
            prop_assert!(cache.used() <= capacity, "{} > {capacity}", cache.used());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.lookups(), lookups);
    }
}
