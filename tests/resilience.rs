//! End-to-end resilience acceptance: plan-level QES failover returns the
//! no-fault oracle, a query cancelled mid-join unwinds in bounded time
//! without leaking scratch state, and every sleep in the stack (throttle
//! pacing, recovery backoff) observes the cancel token within one slice.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::{
    silence_injected_panics, CancelToken, FaultInjector, FaultPlan, RecoveryPolicy, ScratchKind,
    Throttle, WorkerPanicSpec,
};
use orv::join::{grace_hash_join, GraceHashConfig, JoinAlgorithm};
use orv::obs::Obs;
use orv::query::{algorithm_slug, QueryEngine};
use orv::types::{Error, TableId};
use std::time::{Duration, Instant};

fn deployment() -> (Deployment, TableId, TableId) {
    let d = Deployment::in_memory(2);
    let h1 = generate_dataset(
        &DatasetSpec::builder("ra")
            .grid([6, 6, 2])
            .partition([3, 3, 2])
            .scalar_attrs(&["u"])
            .seed(51)
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("rb")
            .grid([6, 6, 2])
            .partition([2, 3, 1])
            .scalar_attrs(&["v"])
            .seed(52)
            .build(),
        &d,
    )
    .unwrap();
    (d, h1.table, h2.table)
}

fn engine() -> QueryEngine {
    QueryEngine::new(deployment().0)
}

const JOIN_SQL: &str = "SELECT * FROM ra JOIN rb ON (x, y, z)";

/// A terminal mid-query failure of the planner's chosen QES (every
/// compute worker crashes) must fail over to the alternate algorithm and
/// still return the no-fault oracle rows, with the switch on the record.
#[test]
fn terminal_qes_failure_fails_over_and_matches_oracle() {
    silence_injected_panics();
    let oracle = engine().execute(JOIN_SQL).unwrap();
    let chosen = oracle.explain.as_ref().unwrap().algorithm;
    assert!(!oracle.rows.is_empty());

    let plan = FaultPlan {
        seed: 3,
        worker_panics: (0..2)
            .map(|w| WorkerPanicSpec {
                worker: w,
                after_ops: 0,
            })
            .collect(),
        max_faults: 8,
        ..FaultPlan::none()
    };
    let obs = Obs::enabled();
    let chaotic = engine()
        .with_obs(obs.clone())
        .with_faults(FaultInjector::new(plan));
    let r = chaotic.execute(JOIN_SQL).unwrap();
    assert_eq!(r.rows, oracle.rows, "failover result must match the oracle");

    let failovers = obs.events.events_of_kind("qes_failover");
    assert_eq!(failovers.len(), 1);
    assert_eq!(
        failovers[0].fields["from"].as_str().unwrap(),
        algorithm_slug(chosen)
    );
    let fallback = match chosen {
        JoinAlgorithm::IndexedJoin => JoinAlgorithm::GraceHash,
        JoinAlgorithm::GraceHash => JoinAlgorithm::IndexedJoin,
    };
    assert_eq!(
        failovers[0].fields["to"].as_str().unwrap(),
        algorithm_slug(fallback)
    );
}

/// Scratch temp directories created under the system temp dir for this
/// process (other test binaries have their own pid).
fn scratch_dirs() -> Vec<std::path::PathBuf> {
    let marker = "orv-scratch-gh";
    let pid = format!("-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(marker) && n.contains(&pid))
        })
        .collect()
}

/// The acceptance bound: cancelling a query mid-join returns a typed
/// `Error::Cancelled` in under two seconds, the worker threads all wind
/// down (the scoped runtime cannot return while any survive), and the
/// on-disk scratch directories are reclaimed by RAII.
#[test]
fn cancelled_mid_join_unwinds_fast_without_leaking_scratch() {
    let before = scratch_dirs().len();

    // Injected read delays keep the join busy long enough to be caught
    // mid-flight (delays are unbounded by the fault budget).
    let plan = FaultPlan {
        seed: 7,
        read_delay_prob: 1.0,
        read_delay_ms: 150,
        ..FaultPlan::none()
    };
    let cancel = CancelToken::new();
    let canceller = cancel.clone();
    let worker = std::thread::spawn(move || {
        let (d, t1, t2) = deployment();
        let cfg = GraceHashConfig {
            n_compute: 2,
            collect_results: true,
            scratch: ScratchKind::TempFile,
            faults: Some(plan.injector()),
            cancel,
            ..Default::default()
        };
        grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg)
    });

    std::thread::sleep(Duration::from_millis(100));
    let cancelled_at = Instant::now();
    canceller.cancel();
    let result = worker.join().expect("join must not panic");
    let unwind = cancelled_at.elapsed();

    match result {
        Err(Error::Cancelled) => {}
        other => panic!("expected Error::Cancelled, got {other:?}"),
    }
    assert!(
        unwind < Duration::from_secs(2),
        "cancel must unwind in under 2s, took {unwind:?}"
    );
    assert_eq!(
        scratch_dirs().len(),
        before,
        "cancelled join must not leak scratch directories"
    );
}

/// A query-level deadline surfaces as `Error::DeadlineExceeded` — and a
/// token that mixes cancel + deadline reports the cancel (the user's
/// explicit verdict wins).
#[test]
fn expired_deadline_is_typed_and_cancel_takes_precedence() {
    let e = engine().with_query_deadline(Duration::ZERO);
    let err = e.execute(JOIN_SQL).unwrap_err();
    assert!(matches!(err, Error::DeadlineExceeded), "{err}");

    let token = CancelToken::with_deadline(Duration::ZERO);
    token.cancel();
    let e = engine();
    let err = e.execute_cancellable(JOIN_SQL, &token).unwrap_err();
    assert!(matches!(err, Error::Cancelled), "{err}");
}

/// Watchdog regression for the satellite requirement: a cancelled query
/// stops a `Throttle::consume` pacing sleep within one 250 ms slice,
/// instead of paying off the whole bandwidth debt first.
#[test]
fn throttled_sleep_observes_cancel_within_one_slice() {
    // 1 byte/sec with a 1 MiB debt = ~12 days of pacing sleep if the
    // token were ignored.
    let throttle = Throttle::new(Some(1.0));
    let cancel = CancelToken::new();
    let canceller = cancel.clone();
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        canceller.cancel();
    });
    let start = Instant::now();
    let err = throttle.consume_cancellable(1 << 20, &cancel).unwrap_err();
    let took = start.elapsed();
    watchdog.join().unwrap();
    assert!(matches!(err, Error::Cancelled), "{err}");
    assert!(
        took < Duration::from_secs(1),
        "cancel must interrupt the pacing sleep within ~one slice, took {took:?}"
    );
}

/// Same bound for `RecoveryPolicy` backoff: a retry loop with a huge
/// backoff stops sleeping as soon as the token fires, and the
/// cancellation error is never itself retried.
#[test]
fn recovery_backoff_observes_cancel_within_one_slice() {
    let policy = RecoveryPolicy {
        max_attempts: 10,
        base_backoff_ms: 60_000,
        op_deadline_ms: 600_000,
    };
    let cancel = CancelToken::new();
    let canceller = cancel.clone();
    let watchdog = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        canceller.cancel();
    });
    let start = Instant::now();
    let (result, retries) = policy.run_cancellable(&cancel, || -> orv::types::Result<()> {
        Err(Error::Cluster("flaky".into()))
    });
    let took = start.elapsed();
    watchdog.join().unwrap();
    match result {
        Err(Error::Cancelled) => {}
        other => panic!("expected Error::Cancelled, got {other:?}"),
    }
    assert!(retries <= 1, "the first backoff sleep must be interrupted");
    assert!(
        took < Duration::from_secs(1),
        "cancel must interrupt the backoff sleep within ~one slice, took {took:?}"
    );
}
