//! The predicted-vs-measured report: both QES implementations run under
//! full observability, every required phase is present, the export is
//! well-formed JSON, and it round-trips losslessly.

use orv::obs::{required_phases, ObsReport};
use orv::obs_report::{standard_report, ReportConfig};

fn small_config() -> ReportConfig {
    ReportConfig {
        grid: [8, 8, 2],
        left_partition: [4, 4, 2],
        right_partition: [2, 8, 1],
        n_storage: 2,
        n_compute: 2,
        calibration_tuples: 50_000,
    }
}

#[test]
fn standard_report_covers_both_algorithms_with_all_phases() {
    let report = standard_report(&small_config()).unwrap();
    report.validate().unwrap();

    let algorithms: Vec<&str> = report.runs.iter().map(|r| r.algorithm.as_str()).collect();
    assert_eq!(algorithms, vec!["indexed_join", "grace_hash"]);

    for run in &report.runs {
        let required = required_phases(&run.algorithm).unwrap();
        for phase in required {
            let row = run
                .phases
                .iter()
                .find(|p| p.phase == *phase)
                .unwrap_or_else(|| panic!("{} missing phase {phase}", run.algorithm));
            assert!(
                row.predicted_secs > 0.0,
                "{}/{phase} predicts zero",
                run.algorithm
            );
            assert!(row.measured_secs >= 0.0);
        }
        assert!(run.measured_wall_secs > 0.0);
        assert!(
            run.measured_phase_total() <= run.measured_wall_secs * run.phases.len() as f64,
            "critical-path phases cannot dwarf wall time: {run:?}"
        );
        // The render is a table with one line per phase plus headers.
        let table = run.render_table();
        assert!(table.contains(&run.algorithm));
        assert!(table.lines().count() >= run.phases.len() + 3);
    }

    // Both runs produced the same result set, and the registry carries
    // both algorithm prefixes.
    assert_eq!(
        report.notes["algorithms_agree"],
        orv::obs::JsonValue::Bool(true)
    );
    assert_eq!(
        report.metrics.counters["ij/result_tuples"],
        report.metrics.counters["gh/result_tuples"]
    );
}

#[test]
fn report_json_round_trips_and_is_well_formed() {
    let report = standard_report(&small_config()).unwrap();
    let json = report.to_json();
    let back = ObsReport::from_json(&json).unwrap();
    assert_eq!(back, report);
    // A truncated export must be rejected, not half-parsed.
    assert!(ObsReport::from_json(&json[..json.len() - 5]).is_err());
}

#[test]
fn measured_phases_track_wall_time_order_of_magnitude() {
    // The headline claim behind the report: the instrumented phase times
    // actually account for the bulk of the run, so the diff against the
    // model is meaningful. Sum of critical-path phases must be positive
    // and not exceed wall time by more than the compute fan-out.
    let report = standard_report(&small_config()).unwrap();
    for run in &report.runs {
        assert!(
            run.measured_phase_total() > 0.0,
            "{} measured nothing",
            run.algorithm
        );
    }
}
