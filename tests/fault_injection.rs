//! Failure injection: malformed chunks, bogus metadata, missing
//! extractors — errors must surface as typed `Error`s, never panics —
//! plus edge-shaped datasets (partitions that do not divide the grid).

use orv::bds::{generate_dataset, BdsService, DatasetSpec, Deployment};
use orv::chunk::{ChunkLocation, ChunkMeta};
use orv::join::reference::{nested_loop_join, sort_records};
use orv::join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};
use orv::types::{BoundingBox, ChunkId, Interval, NodeId, SubTableId, TableId};

fn demo_deployment() -> (Deployment, TableId) {
    let d = Deployment::in_memory(2);
    let h = generate_dataset(
        &DatasetSpec::builder("t")
            .grid([8, 8, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["p"])
            .seed(3)
            .build(),
        &d,
    )
    .unwrap();
    (d, h.table)
}

#[test]
fn chunk_with_bogus_location_errors_cleanly() {
    let (d, t) = demo_deployment();
    // Register an extra chunk whose location overruns the data file.
    d.metadata()
        .register_chunk(ChunkMeta {
            table: t,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: ChunkLocation {
                file: "t.dat".into(),
                offset: 1 << 20,
                len: 4096,
            },
            attributes: vec!["x".into()],
            extractors: vec!["t_layout".into()],
            bbox: BoundingBox::unbounded(),
            num_records: 0,
        })
        .unwrap();
    let svc = BdsService::new(&d, NodeId(0)).unwrap();
    let err = svc.subtable(SubTableId::new(t.0, 4u32)).unwrap_err();
    assert!(err.to_string().contains("overruns"), "{err}");
}

#[test]
fn chunk_with_missing_extractor_errors_cleanly() {
    let (d, t) = demo_deployment();
    // A chunk that claims an extractor nobody registered.
    let loc = d
        .store(NodeId(0))
        .unwrap()
        .lock()
        .append("t.dat", &[0u8; 64])
        .unwrap();
    d.metadata()
        .register_chunk(ChunkMeta {
            table: t,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: loc,
            attributes: vec!["x".into()],
            extractors: vec!["proprietary_v9".into()],
            bbox: BoundingBox::unbounded(),
            num_records: 4,
        })
        .unwrap();
    let svc = BdsService::new(&d, NodeId(0)).unwrap();
    let err = svc.subtable(SubTableId::new(t.0, 4u32)).unwrap_err();
    assert!(err.to_string().contains("extractor"), "{err}");
}

#[test]
fn corrupt_chunk_bytes_fail_extraction() {
    let (d, t) = demo_deployment();
    // Garbage whose length is not a whole number of records.
    let loc = d
        .store(NodeId(0))
        .unwrap()
        .lock()
        .append("t.dat", &[0xAB; 37])
        .unwrap();
    d.metadata()
        .register_chunk(ChunkMeta {
            table: t,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: loc,
            attributes: vec!["x".into()],
            extractors: vec!["t_layout".into()],
            bbox: BoundingBox::unbounded(),
            num_records: 2,
        })
        .unwrap();
    let svc = BdsService::new(&d, NodeId(0)).unwrap();
    let err = svc.subtable(SubTableId::new(t.0, 4u32)).unwrap_err();
    assert!(err.to_string().contains("records"), "{err}");
}

#[test]
fn corrupt_chunk_poisons_joins_with_error_not_panic() {
    let (d, t) = demo_deployment();
    let h2 = generate_dataset(
        &DatasetSpec::builder("t2")
            .grid([8, 8, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["q"])
            .seed(4)
            .build(),
        &d,
    )
    .unwrap();
    // Corrupt chunk injected into t2: bad byte count, overlapping bbox so
    // joins must touch it.
    let loc = d
        .store(NodeId(0))
        .unwrap()
        .lock()
        .append("t2.dat", &[0xCD; 33])
        .unwrap();
    d.metadata()
        .register_chunk(ChunkMeta {
            table: h2.table,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: loc,
            attributes: vec!["x".into(), "y".into(), "z".into(), "q".into()],
            extractors: vec!["t2_layout".into()],
            bbox: BoundingBox::from_dims([("x", Interval::new(0.0, 7.0))]),
            num_records: 2,
        })
        .unwrap();
    let attrs = ["x", "y", "z"];
    assert!(indexed_join(&d, t, h2.table, &attrs, &IndexedJoinConfig::default()).is_err());
    assert!(grace_hash_join(&d, t, h2.table, &attrs, &GraceHashConfig::default()).is_err());
}

#[test]
fn uneven_partitions_still_join_correctly() {
    // Partitions that do NOT divide the grid: clipped edge chunks.
    let d = Deployment::in_memory(3);
    let h1 = generate_dataset(
        &DatasetSpec::builder("a")
            .grid([7, 5, 3])
            .partition([4, 2, 2])
            .scalar_attrs(&["u"])
            .seed(9)
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("b")
            .grid([7, 5, 3])
            .partition([3, 5, 1])
            .scalar_attrs(&["v"])
            .seed(10)
            .build(),
        &d,
    )
    .unwrap();
    assert_eq!(h1.total_tuples(), 105);
    let attrs = ["x", "y", "z"];
    let oracle = sort_records(nested_loop_join(&d, h1.table, h2.table, &attrs, None).unwrap());
    assert_eq!(oracle.len(), 105);
    let ij = indexed_join(
        &d,
        h1.table,
        h2.table,
        &attrs,
        &IndexedJoinConfig {
            collect_results: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sort_records(ij.records.unwrap()), oracle);
    let gh = grace_hash_join(
        &d,
        h1.table,
        h2.table,
        &attrs,
        &GraceHashConfig {
            collect_results: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sort_records(gh.records.unwrap()), oracle);
}

#[test]
fn empty_intersection_join_produces_zero_rows() {
    // Disjoint grids joined on x only — bounding boxes never overlap, so
    // the connectivity graph is empty and IJ does no work at all.
    let d = Deployment::in_memory(1);
    let h1 = generate_dataset(
        &DatasetSpec::builder("a")
            .grid([4, 4, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["u"])
            .seed(1)
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("b")
            .grid([4, 4, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["v"])
            .seed(2)
            .build(),
        &d,
    )
    .unwrap();
    // Constrain to a region that excludes everything.
    let range = BoundingBox::from_dims([("x", Interval::new(100.0, 200.0))]);
    let ij = indexed_join(
        &d,
        h1.table,
        h2.table,
        &["x", "y", "z"],
        &IndexedJoinConfig {
            collect_results: true,
            range: Some(range.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(ij.stats.result_tuples, 0);
    assert_eq!(ij.stats.cache_misses, 0, "nothing should be fetched");
    let gh = grace_hash_join(
        &d,
        h1.table,
        h2.table,
        &["x", "y", "z"],
        &GraceHashConfig {
            collect_results: true,
            range: Some(range),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(gh.stats.result_tuples, 0);
}
