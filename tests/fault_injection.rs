//! Failure injection: malformed chunks, bogus metadata, missing
//! extractors — errors must surface as typed `Error`s, never panics —
//! plus edge-shaped datasets (partitions that do not divide the grid),
//! plus seeded [`FaultPlan`] chaos: transient read faults, dropped
//! interconnect messages, scratch-write failures and compute-worker
//! crashes, driven both deterministically and by proptest. Under any
//! transient plan both join runtimes must produce oracle-identical output
//! or a typed `Error::Cluster` within a bounded deadline — never a hang,
//! never an escaped panic.

use orv::bds::{generate_dataset, BdsService, DatasetSpec, Deployment};
use orv::chunk::{ChunkLocation, ChunkMeta};
use orv::cluster::{silence_injected_panics, FaultPlan, RecoveryPolicy, WorkerPanicSpec};
use orv::join::reference::{nested_loop_join, sort_records};
use orv::join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};
use orv::types::{BoundingBox, ChunkId, Error, Interval, NodeId, Record, SubTableId, TableId};
use proptest::prelude::*;
use std::time::Duration;

fn demo_deployment() -> (Deployment, TableId) {
    let d = Deployment::in_memory(2);
    let h = generate_dataset(
        &DatasetSpec::builder("t")
            .grid([8, 8, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["p"])
            .seed(3)
            .build(),
        &d,
    )
    .unwrap();
    (d, h.table)
}

#[test]
fn chunk_with_bogus_location_errors_cleanly() {
    let (d, t) = demo_deployment();
    // Register an extra chunk whose location overruns the data file.
    d.metadata()
        .register_chunk(ChunkMeta {
            table: t,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: ChunkLocation {
                file: "t.dat".into(),
                offset: 1 << 20,
                len: 4096,
            },
            attributes: vec!["x".into()],
            extractors: vec!["t_layout".into()],
            bbox: BoundingBox::unbounded(),
            num_records: 0,
            checksum: None,
        })
        .unwrap();
    let svc = BdsService::new(&d, NodeId(0)).unwrap();
    let err = svc.subtable(SubTableId::new(t.0, 4u32)).unwrap_err();
    assert!(err.to_string().contains("overruns"), "{err}");
}

#[test]
fn chunk_with_missing_extractor_errors_cleanly() {
    let (d, t) = demo_deployment();
    // A chunk that claims an extractor nobody registered.
    let loc = d
        .store(NodeId(0))
        .unwrap()
        .lock()
        .append("t.dat", &[0u8; 64])
        .unwrap();
    d.metadata()
        .register_chunk(ChunkMeta {
            table: t,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: loc,
            attributes: vec!["x".into()],
            extractors: vec!["proprietary_v9".into()],
            bbox: BoundingBox::unbounded(),
            num_records: 4,
            checksum: None,
        })
        .unwrap();
    let svc = BdsService::new(&d, NodeId(0)).unwrap();
    let err = svc.subtable(SubTableId::new(t.0, 4u32)).unwrap_err();
    assert!(err.to_string().contains("extractor"), "{err}");
}

#[test]
fn corrupt_chunk_bytes_fail_extraction() {
    let (d, t) = demo_deployment();
    // Garbage whose length is not a whole number of records.
    let loc = d
        .store(NodeId(0))
        .unwrap()
        .lock()
        .append("t.dat", &[0xAB; 37])
        .unwrap();
    d.metadata()
        .register_chunk(ChunkMeta {
            table: t,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: loc,
            attributes: vec!["x".into()],
            extractors: vec!["t_layout".into()],
            bbox: BoundingBox::unbounded(),
            num_records: 2,
            checksum: None,
        })
        .unwrap();
    let svc = BdsService::new(&d, NodeId(0)).unwrap();
    let err = svc.subtable(SubTableId::new(t.0, 4u32)).unwrap_err();
    assert!(err.to_string().contains("records"), "{err}");
}

#[test]
fn corrupt_chunk_poisons_joins_with_error_not_panic() {
    let (d, t) = demo_deployment();
    let h2 = generate_dataset(
        &DatasetSpec::builder("t2")
            .grid([8, 8, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["q"])
            .seed(4)
            .build(),
        &d,
    )
    .unwrap();
    // Corrupt chunk injected into t2: bad byte count, overlapping bbox so
    // joins must touch it.
    let loc = d
        .store(NodeId(0))
        .unwrap()
        .lock()
        .append("t2.dat", &[0xCD; 33])
        .unwrap();
    d.metadata()
        .register_chunk(ChunkMeta {
            table: h2.table,
            chunk: ChunkId(4),
            node: NodeId(0),
            location: loc,
            attributes: vec!["x".into(), "y".into(), "z".into(), "q".into()],
            extractors: vec!["t2_layout".into()],
            bbox: BoundingBox::from_dims([("x", Interval::new(0.0, 7.0))]),
            num_records: 2,
            checksum: None,
        })
        .unwrap();
    let attrs = ["x", "y", "z"];
    assert!(indexed_join(&d, t, h2.table, &attrs, &IndexedJoinConfig::default()).is_err());
    assert!(grace_hash_join(&d, t, h2.table, &attrs, &GraceHashConfig::default()).is_err());
}

#[test]
fn uneven_partitions_still_join_correctly() {
    // Partitions that do NOT divide the grid: clipped edge chunks.
    let d = Deployment::in_memory(3);
    let h1 = generate_dataset(
        &DatasetSpec::builder("a")
            .grid([7, 5, 3])
            .partition([4, 2, 2])
            .scalar_attrs(&["u"])
            .seed(9)
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("b")
            .grid([7, 5, 3])
            .partition([3, 5, 1])
            .scalar_attrs(&["v"])
            .seed(10)
            .build(),
        &d,
    )
    .unwrap();
    assert_eq!(h1.total_tuples(), 105);
    let attrs = ["x", "y", "z"];
    let oracle = sort_records(nested_loop_join(&d, h1.table, h2.table, &attrs, None).unwrap());
    assert_eq!(oracle.len(), 105);
    let ij = indexed_join(
        &d,
        h1.table,
        h2.table,
        &attrs,
        &IndexedJoinConfig {
            collect_results: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sort_records(ij.records.unwrap()), oracle);
    let gh = grace_hash_join(
        &d,
        h1.table,
        h2.table,
        &attrs,
        &GraceHashConfig {
            collect_results: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(sort_records(gh.records.unwrap()), oracle);
}

/// Two overlapping tables on 2 storage nodes, small enough to run under
/// many proptest cases.
fn two_tables() -> (Deployment, TableId, TableId) {
    let d = Deployment::in_memory(2);
    let h1 = generate_dataset(
        &DatasetSpec::builder("fa")
            .grid([6, 6, 1])
            .partition([3, 3, 1])
            .scalar_attrs(&["u"])
            .seed(21)
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("fb")
            .grid([6, 6, 1])
            .partition([2, 3, 1])
            .scalar_attrs(&["v"])
            .seed(22)
            .build(),
        &d,
    )
    .unwrap();
    (d, h1.table, h2.table)
}

/// Run `f` on its own thread and insist it finishes within `secs` —
/// the no-hang watchdog for fault scenarios.
fn within_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("join under faults must finish within the deadline (no hang)")
}

/// The acceptance scenario: one seeded plan with transient read errors,
/// dropped interconnect messages AND a compute-worker crash. IJ must
/// recover everything (reassigning the dead worker's pairs) and still
/// match the oracle; GH cannot replace a dead compute node, so it must
/// fail fast with a typed `Error::Cluster` naming the panic — both within
/// a bounded deadline.
#[test]
fn mixed_fault_plan_recovers_or_fails_typed_within_deadline() {
    silence_injected_panics();
    let plan = FaultPlan {
        seed: 0xFA_07,
        read_error_prob: 1.0,
        max_read_errors: 2,
        send_drop_prob: 1.0,
        max_send_drops: 2,
        scratch_error_prob: 0.0,
        worker_panics: vec![WorkerPanicSpec {
            worker: 1,
            after_ops: 1,
        }],
        max_faults: 5,
        ..FaultPlan::none()
    };

    let ij_plan = plan.clone();
    let (out, oracle) = within_deadline(30, move || {
        let (d, t1, t2) = two_tables();
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            collect_results: true,
            faults: Some(ij_plan.injector()),
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let oracle = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        (out, oracle)
    });
    assert_eq!(sort_records(out.records.unwrap()), sort_records(oracle));
    assert!(
        out.stats.read_retries > 0,
        "retry counter must be nonzero: {:?}",
        out.stats
    );
    assert_eq!(out.stats.worker_panics, 1, "{:?}", out.stats);
    assert!(
        out.stats.pairs_reassigned > 0,
        "reassignment counter must be nonzero: {:?}",
        out.stats
    );

    let gh_plan = plan.clone();
    let err = within_deadline(30, move || {
        let (d, t1, t2) = two_tables();
        let cfg = GraceHashConfig {
            n_compute: 2,
            faults: Some(gh_plan.injector()),
            ..Default::default()
        };
        grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap_err()
    });
    assert!(matches!(err, Error::Cluster(_)), "{err}");
    assert!(err.to_string().contains("panicked"), "{err}");

    // The same plan *without* the crash is fully transient: GH recovers
    // the dropped messages and read faults and matches the oracle.
    let mut transient = plan;
    transient.worker_panics.clear();
    let (gh, oracle) = within_deadline(30, move || {
        let (d, t1, t2) = two_tables();
        let cfg = GraceHashConfig {
            n_compute: 2,
            collect_results: true,
            faults: Some(transient.injector()),
            ..Default::default()
        };
        let gh = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let oracle = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        (gh, oracle)
    });
    assert_eq!(sort_records(gh.records.unwrap()), sort_records(oracle));
    assert!(
        gh.stats.send_retries > 0,
        "dropped sends must be retried: {:?}",
        gh.stats
    );
    assert!(gh.stats.read_retries > 0, "{:?}", gh.stats);
}

#[test]
fn every_worker_dead_errors_within_deadline() {
    silence_injected_panics();
    let err = within_deadline(30, || {
        let (d, t1, t2) = two_tables();
        let plan = FaultPlan {
            seed: 1,
            worker_panics: vec![
                WorkerPanicSpec {
                    worker: 0,
                    after_ops: 0,
                },
                WorkerPanicSpec {
                    worker: 1,
                    after_ops: 0,
                },
            ],
            max_faults: 2,
            ..FaultPlan::none()
        };
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            faults: Some(plan.injector()),
            ..Default::default()
        };
        indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap_err()
    });
    assert!(matches!(err, Error::Cluster(_)), "{err}");
}

#[test]
fn seeded_plans_are_reproducible() {
    assert_eq!(FaultPlan::from_seed(77), FaultPlan::from_seed(77));
    assert_ne!(FaultPlan::from_seed(77), FaultPlan::from_seed(78));
    // A from_seed plan is bounded, so the default recovery policy with
    // generous attempts must always push IJ through to the oracle.
    silence_injected_panics();
    let (out, oracle) = within_deadline(30, || {
        let (d, t1, t2) = two_tables();
        let plan = FaultPlan::from_seed(77);
        let cfg = IndexedJoinConfig {
            n_compute: 2,
            collect_results: true,
            faults: Some(plan.injector()),
            recovery: RecoveryPolicy {
                max_attempts: 9,
                base_backoff_ms: 1,
                op_deadline_ms: 10_000,
            },
            ..Default::default()
        };
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
        let oracle = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
        (out, oracle)
    });
    assert_eq!(sort_records(out.records.unwrap()), sort_records(oracle));
}

fn sorted(records: Option<Vec<Record>>) -> Vec<Record> {
    sort_records(records.expect("collect_results was set"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any purely transient plan (caps + budget, no crashes) with enough
    /// retry attempts MUST leave both runtimes oracle-identical: a worst
    /// case op sees at most `2 * cap` consecutive faults (a reported
    /// error plus a detected corruption share one retry loop), and
    /// attempts > 2 * cap, so every operation eventually succeeds. Every
    /// injected corruption must also be *detected* — checksums catch
    /// 100% of the silent flips.
    #[test]
    fn random_transient_plans_always_recover(
        seed in any::<u64>(),
        read_p in 0.0f64..1.0,
        drop_p in 0.0f64..1.0,
        scratch_p in 0.0f64..1.0,
        corrupt_p in 0.0f64..1.0,
        cap in 0u64..4,
    ) {
        let plan = FaultPlan {
            seed,
            read_error_prob: read_p,
            max_read_errors: cap,
            read_delay_prob: 0.1,
            read_delay_ms: 1,
            send_drop_prob: drop_p,
            max_send_drops: cap,
            send_delay_prob: 0.1,
            send_delay_ms: 1,
            scratch_error_prob: scratch_p,
            max_scratch_errors: cap,
            chunk_corrupt_prob: corrupt_p,
            max_chunk_corruptions: cap,
            frame_corrupt_prob: corrupt_p,
            max_frame_corruptions: cap,
            scratch_corrupt_prob: corrupt_p,
            max_scratch_corruptions: cap,
            worker_panics: vec![],
            shard_deaths: vec![],
            shard_slows: vec![],
            client_floods: vec![],
            shard_slow_storms: vec![],
            max_faults: cap * 6,
        };
        let recovery = RecoveryPolicy {
            max_attempts: 2 * cap as u32 + 2,
            base_backoff_ms: 1,
            op_deadline_ms: 10_000,
        };
        let (d, t1, t2) = two_tables();
        let oracle =
            sort_records(nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap());
        let ij_faults = plan.clone().injector();
        let ij = indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig {
            n_compute: 2,
            collect_results: true,
            faults: Some(ij_faults.clone()),
            recovery,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(sorted(ij.records), oracle.clone());
        prop_assert_eq!(ij.stats.corruptions_detected, ij_faults.stats().corruptions());
        let gh_faults = plan.injector();
        let gh = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &GraceHashConfig {
            n_compute: 2,
            collect_results: true,
            faults: Some(gh_faults.clone()),
            recovery,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(sorted(gh.records), oracle);
        prop_assert_eq!(gh.stats.corruptions_detected, gh_faults.stats().corruptions());
    }

    /// A single worker crash anywhere in the schedule never costs IJ
    /// correctness: either the worker dies (pairs reassigned) or the
    /// checkpoint is never reached — both match the oracle.
    #[test]
    fn random_worker_crashes_never_break_indexed_join(
        seed in any::<u64>(),
        worker in 0usize..3,
        after_ops in 0u64..6,
    ) {
        silence_injected_panics();
        let plan = FaultPlan {
            seed,
            worker_panics: vec![WorkerPanicSpec { worker, after_ops }],
            max_faults: 1,
            ..FaultPlan::none()
        };
        let (d, t1, t2) = two_tables();
        let oracle =
            sort_records(nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap());
        let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &IndexedJoinConfig {
            n_compute: 3,
            collect_results: true,
            faults: Some(plan.injector()),
            ..Default::default()
        }).unwrap();
        prop_assert!(out.stats.worker_panics <= 1);
        prop_assert_eq!(sorted(out.records), oracle);
    }
}

#[test]
fn empty_intersection_join_produces_zero_rows() {
    // Disjoint grids joined on x only — bounding boxes never overlap, so
    // the connectivity graph is empty and IJ does no work at all.
    let d = Deployment::in_memory(1);
    let h1 = generate_dataset(
        &DatasetSpec::builder("a")
            .grid([4, 4, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["u"])
            .seed(1)
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("b")
            .grid([4, 4, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["v"])
            .seed(2)
            .build(),
        &d,
    )
    .unwrap();
    // Constrain to a region that excludes everything.
    let range = BoundingBox::from_dims([("x", Interval::new(100.0, 200.0))]);
    let ij = indexed_join(
        &d,
        h1.table,
        h2.table,
        &["x", "y", "z"],
        &IndexedJoinConfig {
            collect_results: true,
            range: Some(range.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(ij.stats.result_tuples, 0);
    assert_eq!(ij.stats.cache_misses, 0, "nothing should be fetched");
    let gh = grace_hash_join(
        &d,
        h1.table,
        h2.table,
        &["x", "y", "z"],
        &GraceHashConfig {
            collect_results: true,
            range: Some(range),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(gh.stats.result_tuples, 0);
}
