//! Federated serving acceptance: seeded shard faults are masked (or
//! reported exactly) by the federation router.
//!
//! 1. A seeded fault plan killing one shard mid-sequence leaves every
//!    federated answer byte-identical to a single-engine oracle, via
//!    replica failover; the `fed/*` counters agree with the injected
//!    fault log.
//! 2. Killing *every* replica of some chunks degrades to a typed
//!    [`PartialResult`] whose missing set and completeness fraction match
//!    the dead shards' ownership exactly — or to [`Error::Unavailable`]
//!    in strict mode.
//! 3. A stalled shard is beaten by a hedged re-issue to a replica, again
//!    byte-identically.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::{FaultInjector, FaultPlan, ShardDeathSpec, ShardSlowSpec};
use orv::metadata::Placement;
use orv::obs::{names, Obs};
use orv::query::{FederatedResponse, FederatedService, FederationConfig, QueryEngine, QueryResult};
use orv::types::{ChunkId, Error, SubTableId};
use std::time::Duration;

const SCAN: &str = "SELECT * FROM ft WHERE x IN [0, 5]";
const COUNT: &str = "SELECT COUNT(*) FROM ft";

fn deployment() -> Deployment {
    let d = Deployment::in_memory(2);
    generate_dataset(
        &DatasetSpec::builder("ft")
            .grid([8, 8, 2])
            .partition([2, 2, 1])
            .scalar_attrs(&["p"])
            .seed(29)
            .build(),
        &d,
    )
    .unwrap();
    d
}

fn oracle(sql: &str) -> QueryResult {
    QueryEngine::new(deployment()).execute(sql).unwrap()
}

fn shard_death_events(obs: &Obs, kind: &str) -> usize {
    obs.events
        .events_of_kind(names::FAULT_INJECTED)
        .iter()
        .filter(|ev| ev.fields["kind"].as_str() == Some(kind))
        .count()
}

#[test]
fn seeded_shard_death_mid_sequence_is_byte_identical_to_oracle() {
    for seed in [3u64, 11, 42] {
        let obs = Obs::enabled();
        let dead_shard = (seed % 3) as usize;
        let plan = FaultPlan {
            seed,
            shard_deaths: vec![ShardDeathSpec {
                shard: dead_shard,
                // Serve a couple of sub-queries first, then die: the
                // death lands mid-sequence, so both the healthy path and
                // the failover path are exercised in one run.
                after_subqueries: 2,
            }],
            max_faults: 8,
            ..FaultPlan::none()
        };
        let injector = FaultInjector::new_with_events(plan, obs.events.clone());
        let fed = FederatedService::with_instruments(
            deployment(),
            FederationConfig::default(),
            obs.clone(),
            Some(injector.clone()),
        )
        .unwrap();

        let want_scan = oracle(SCAN);
        let want_count = oracle(COUNT);
        for round in 0..4 {
            let scan = fed.execute(SCAN).unwrap();
            assert!(scan.is_complete(), "seed {seed} round {round}");
            assert_eq!(
                scan.result().rows,
                want_scan.rows,
                "seed {seed} round {round}"
            );
            let count = fed.execute(COUNT).unwrap();
            assert_eq!(
                count.result().rows,
                want_count.rows,
                "seed {seed} round {round}"
            );
        }

        // Counters agree with the injected fault log: the one death shows
        // up in the log, and masking it took at least one failover (and
        // therefore at least one observed shard error). No partial
        // results: replication covered everything.
        let stats = injector.stats();
        assert_eq!(stats.shard_deaths, 1, "seed {seed}");
        assert_eq!(shard_death_events(&obs, "shard_death"), 1, "seed {seed}");
        let snap = obs.metrics.snapshot();
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        assert!(counter(names::FED_FAILOVERS) >= 1, "seed {seed}");
        assert!(counter(names::FED_SHARD_ERRORS) >= counter(names::FED_FAILOVERS));
        assert_eq!(counter(names::FED_PARTIAL), 0, "seed {seed}");
        assert_eq!(counter(names::FED_MISSING_CHUNKS), 0, "seed {seed}");
    }
}

#[test]
fn killing_every_replica_degrades_to_exact_partial_result() {
    let obs = Obs::enabled();
    let cfg = FederationConfig::default(); // 3 shards, R = 2
    let plan = FaultPlan {
        shard_deaths: vec![
            ShardDeathSpec {
                shard: 0,
                after_subqueries: 0,
            },
            ShardDeathSpec {
                shard: 1,
                after_subqueries: 0,
            },
        ],
        max_faults: 8,
        ..FaultPlan::none()
    };
    let injector = FaultInjector::new_with_events(plan.clone(), obs.events.clone());
    let d = deployment();
    let md = d.metadata();
    let table = md.table_id("ft").unwrap();
    let placement = Placement::new(cfg.shards, cfg.replication, cfg.placement_seed).unwrap();
    // Oracle for the missing set: chunks whose whole owner set is dead.
    let expected_missing: Vec<ChunkId> = md
        .all_chunks(table)
        .unwrap()
        .into_iter()
        .filter(|&chunk| {
            placement
                .owners(SubTableId { table, chunk })
                .iter()
                .all(|&s| s == 0 || s == 1)
        })
        .collect();
    assert!(
        !expected_missing.is_empty(),
        "seeded placement must put some chunks wholly on shards 0+1"
    );
    let total = md.all_chunks(table).unwrap().len();

    let fed =
        FederatedService::with_instruments(d.clone(), cfg.clone(), obs.clone(), Some(injector))
            .unwrap();
    let FederatedResponse::Partial(partial) = fed.execute("SELECT * FROM ft").unwrap() else {
        panic!("two dead shards out of three (R=2) must yield a partial result");
    };
    assert_eq!(partial.missing_chunks, expected_missing);
    let want_completeness = (total - expected_missing.len()) as f64 / total as f64;
    assert!((partial.completeness - want_completeness).abs() < 1e-12);
    // The surviving rows are exactly the oracle rows of the live chunks:
    // a subset, never garbage.
    let full = oracle("SELECT * FROM ft");
    assert!(partial.result.rows.len() < full.rows.len());
    assert!(partial.result.rows.iter().all(|r| full.rows.contains(r)));
    let snap = obs.metrics.snapshot();
    assert_eq!(snap.counters.get(names::FED_PARTIAL).copied(), Some(1));
    assert_eq!(
        snap.counters.get(names::FED_MISSING_CHUNKS).copied(),
        Some(expected_missing.len() as u64)
    );

    // Strict mode on the same fault plan: a typed Unavailable error
    // carrying the same missing-chunk count.
    let strict = FederatedService::with_instruments(
        d,
        FederationConfig {
            strict: true,
            ..cfg
        },
        Obs::disabled(),
        Some(FaultInjector::new(plan)),
    )
    .unwrap();
    let err = strict.execute("SELECT * FROM ft").unwrap_err();
    let Error::Unavailable { missing_chunks, .. } = err else {
        panic!("strict mode must fail typed, got {err}");
    };
    assert_eq!(missing_chunks, expected_missing.len());
}

#[test]
fn hedged_request_beats_a_stalled_shard_byte_identically() {
    let obs = Obs::enabled();
    let plan = FaultPlan {
        shard_slows: vec![ShardSlowSpec {
            shard: 0,
            after_subqueries: 0,
            delay_ms: 2_000,
        }],
        ..FaultPlan::none()
    };
    let injector = FaultInjector::new_with_events(plan, obs.events.clone());
    let fed = FederatedService::with_instruments(
        deployment(),
        FederationConfig {
            hedge_after: Some(Duration::from_millis(40)),
            ..FederationConfig::default()
        },
        obs.clone(),
        Some(injector.clone()),
    )
    .unwrap();
    let got = fed.execute("SELECT * FROM ft").unwrap();
    assert!(got.is_complete());
    assert_eq!(got.result().rows, oracle("SELECT * FROM ft").rows);

    // The stall fired, the hedge fired, and a hedge flight filled chunks
    // the stalled shard never delivered.
    assert_eq!(injector.stats().shard_slows, 1);
    assert_eq!(shard_death_events(&obs, "shard_slow"), 1);
    let snap = obs.metrics.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(counter(names::FED_HEDGES) >= 1, "{:?}", snap.counters);
    assert!(counter(names::FED_HEDGE_WINS) >= 1, "{:?}", snap.counters);
    assert!(counter(names::FED_HEDGE_WINS) <= counter(names::FED_HEDGES));
}

#[test]
fn breaker_trips_once_failures_accumulate_and_counters_stay_consistent() {
    let obs = Obs::enabled();
    let plan = FaultPlan {
        shard_deaths: vec![ShardDeathSpec {
            shard: 2,
            after_subqueries: 0,
        }],
        max_faults: 4,
        ..FaultPlan::none()
    };
    let injector = FaultInjector::new_with_events(plan, obs.events.clone());
    let fed = FederatedService::with_instruments(
        deployment(),
        FederationConfig {
            trip_after: 2,
            cooldown_ticks: 50,
            ..FederationConfig::default()
        },
        obs.clone(),
        Some(injector),
    )
    .unwrap();
    let want = oracle(COUNT);
    for _ in 0..6 {
        let got = fed.execute(COUNT).unwrap();
        assert!(got.is_complete());
        assert_eq!(got.result().rows, want.rows);
    }
    let snap = obs.metrics.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert!(
        counter(names::FED_TRIPS) >= 1,
        "a permanently dead shard must trip its breaker: {:?}",
        snap.counters
    );
    assert!(counter(names::FED_SHARD_ERRORS) >= counter(names::FED_TRIPS) * 2);
    assert_eq!(counter(names::FED_PARTIAL), 0);
}
