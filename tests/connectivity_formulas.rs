//! The built connectivity graph must match the paper's closed forms
//! (`C`, `N_C`, `E_C`, `n_e`) for every regular partitioning, and the
//! IJ cache-residency guarantee of §5.1 must hold under the two-stage
//! schedule.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::join::connectivity::{predict_regular, ConnectivityGraph};
use orv::join::reference::sort_records;
use orv::join::{indexed_join, indexed_join_cached, CacheService, IndexedJoinConfig};
use proptest::prelude::*;

fn divisors_of(n: u64) -> Vec<u64> {
    (0..=n.trailing_zeros()).map(|k| 1u64 << k).collect()
}

fn deploy(
    grid: [u64; 3],
    p: [u64; 3],
    q: [u64; 3],
) -> (Deployment, orv::types::TableId, orv::types::TableId) {
    let d = Deployment::in_memory(2);
    let h1 = generate_dataset(
        &DatasetSpec::builder("t1")
            .grid(grid)
            .partition(p)
            .scalar_attrs(&["a"])
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("t2")
            .grid(grid)
            .partition(q)
            .scalar_attrs(&["b"])
            .build(),
        &d,
    )
    .unwrap();
    (d, h1.table, h2.table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn graph_matches_closed_forms(
        (grid, p, q) in (2u32..=4, 2u32..=4, 0u32..=2).prop_flat_map(|(lx, ly, lz)| {
            let grid = [1u64 << lx, 1u64 << ly, 1u64 << lz];
            let part = |g: u64| proptest::sample::select(divisors_of(g));
            (
                Just(grid),
                (part(grid[0]), part(grid[1]), part(grid[2])).prop_map(|(a, b, c)| [a, b, c]),
                (part(grid[0]), part(grid[1]), part(grid[2])).prop_map(|(a, b, c)| [a, b, c]),
            )
        }),
    ) {
        let (d, t1, t2) = deploy(grid, p, q);
        let graph = ConnectivityGraph::build(d.metadata(), t1, t2, &["x", "y", "z"], None).unwrap();
        let pred = predict_regular(grid, p, q);

        prop_assert_eq!(graph.num_edges() as u64, pred.n_e, "n_e mismatch: {:?}", pred);
        prop_assert_eq!(graph.num_components() as u64, pred.n_c, "N_C mismatch: {:?}", pred);
        for comp in &graph.components {
            prop_assert_eq!(comp.a() as u64, pred.a);
            prop_assert_eq!(comp.b() as u64, pred.b);
            prop_assert_eq!(comp.edges.len() as u64, pred.e_c);
        }
    }

    #[test]
    fn two_stage_schedule_has_no_repeat_fetches(
        i in 0u32..=3,
        n_compute in 1usize..4,
    ) {
        // §5.1: with memory ≥ 2·c_R + b·c_S per node and the two-stage
        // schedule, no sub-table is evicted while still needed — so each
        // sub-table is fetched exactly once.
        let narrow = 16u64 >> i;
        let (d, t1, t2) = deploy([32, 32, 1], [16, narrow, 1], [narrow, 16, 1]);
        let out = indexed_join(
            &d,
            t1,
            t2,
            &["x", "y", "z"],
            &IndexedJoinConfig {
                n_compute,
                cache_capacity: 1 << 30,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = predict_regular([32, 32, 1], [16, narrow, 1], [narrow, 16, 1]);
        let total_subtables = pred.n_c * (pred.a + pred.b);
        prop_assert_eq!(out.stats.cache_misses, total_subtables);
        // Every edge beyond the per-sub-table first touch hits the cache:
        // touches = 2 per edge; misses = sub-tables.
        prop_assert_eq!(out.stats.cache_hits + out.stats.cache_misses, 2 * pred.n_e);
    }

    #[test]
    fn concurrent_queries_share_one_fetch_per_subtable(
        i in 0u32..=3,
        n_compute in 1usize..4,
    ) {
        // §5.1 under concurrency: two *simultaneous* IJ queries over one
        // shared Caching Service must together fetch each sub-table
        // exactly once — the single-flight path makes the second query a
        // waiter, never a refetcher, so summed misses stay at
        // N_C·(a + b) and every other touch is a hit.
        let narrow = 16u64 >> i;
        let (d, t1, t2) = deploy([32, 32, 1], [16, narrow, 1], [narrow, 16, 1]);
        let d = std::sync::Arc::new(d);
        let cache = std::sync::Arc::new(CacheService::new(n_compute, 1 << 30));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let d = std::sync::Arc::clone(&d);
                let cache = std::sync::Arc::clone(&cache);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let cfg = IndexedJoinConfig {
                        n_compute,
                        collect_results: true,
                        ..Default::default()
                    };
                    barrier.wait();
                    indexed_join_cached(&d, t1, t2, &["x", "y", "z"], &cfg, &cache).unwrap()
                })
            })
            .collect();
        let outs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .collect();

        let pred = predict_regular([32, 32, 1], [16, narrow, 1], [narrow, 16, 1]);
        let total_subtables = pred.n_c * (pred.a + pred.b);
        let misses: u64 = outs.iter().map(|o| o.stats.cache_misses).sum();
        let hits: u64 = outs.iter().map(|o| o.stats.cache_hits).sum();
        prop_assert_eq!(misses, total_subtables, "a concurrent query refetched");
        // Both queries touch every edge twice; all touches beyond the
        // per-sub-table first fetch are hits.
        prop_assert_eq!(hits + misses, 2 * 2 * pred.n_e);
        // And concurrency must not change the answer.
        let a = sort_records(outs[0].records.clone().unwrap());
        let b = sort_records(outs[1].records.clone().unwrap());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len() as u64, 32 * 32);
    }
}

#[test]
fn figure3_example_reproduced() {
    // Figure 3 shows a component with a = 2 left and b = 4 right
    // sub-tables (8 edges). Partition a 2-D grid 2× coarser in y on the
    // left and 2× coarser in x on the right... the canonical instance:
    // p = (2, 4, 1), q = (4, 2, 1) on an 8×8 grid gives C = (4, 4, 1),
    // a = C/p = 2·1 = 2, b = C/q = 1·2 = 2 — to get the paper's 2×4 we
    // need p = (2, 8, 1), q = (4, 4, 1): C = (4, 8, 1), a = 2·1 = 2,
    // b = 1·2·... = 2. Instead use volumes: a·b = E_C = 8 with a = 2,
    // b = 4 ⇔ p twice as coarse as C in one dim, q four times in two.
    let grid = [8, 8, 2];
    let p = [4, 8, 2]; // a = (8/4)·1·1 = 2 within C = (8, 8, 2)
    let q = [8, 4, 1]; // b = 1·(8/4)·(2/1) = 4
    let pred = predict_regular(grid, p, q);
    assert_eq!(pred.a, 2);
    assert_eq!(pred.b, 4);
    assert_eq!(pred.e_c, 8);
    let (d, t1, t2) = deploy(grid, p, q);
    let graph = ConnectivityGraph::build(d.metadata(), t1, t2, &["x", "y", "z"], None).unwrap();
    assert_eq!(graph.num_components(), 1);
    let comp = &graph.components[0];
    assert_eq!((comp.a(), comp.b()), (2, 4));
    assert_eq!(comp.edges.len(), 8, "complete bipartite 2×4 as in Figure 3");
}
