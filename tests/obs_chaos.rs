//! Chaos runs are replayable from the event log alone: the injector
//! emits a `fault_plan` event carrying the full seeded plan plus one
//! `fault_injected` event per fired fault (kind, site, draw index), and
//! those must agree with the injector's own statistics and survive a
//! round-trip through the JSON-lines export.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::FaultPlan;
use orv::join::reference::{nested_loop_join, sort_records};
use orv::join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig};
use orv::obs::{EventLog, Obs};
use orv::types::TableId;

fn two_tables() -> (Deployment, TableId, TableId) {
    let d = Deployment::in_memory(2);
    let h1 = generate_dataset(
        &DatasetSpec::builder("ca")
            .grid([6, 6, 2])
            .partition([3, 3, 2])
            .scalar_attrs(&["u"])
            .seed(41)
            .build(),
        &d,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("cb")
            .grid([6, 6, 2])
            .partition([2, 3, 1])
            .scalar_attrs(&["v"])
            .seed(42)
            .build(),
        &d,
    )
    .unwrap();
    (d, h1.table, h2.table)
}

fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 0x0B5,
        read_error_prob: 0.4,
        max_read_errors: 3,
        send_drop_prob: 0.4,
        max_send_drops: 3,
        scratch_error_prob: 0.4,
        max_scratch_errors: 3,
        chunk_corrupt_prob: 0.4,
        max_chunk_corruptions: 2,
        frame_corrupt_prob: 0.4,
        max_frame_corruptions: 2,
        scratch_corrupt_prob: 0.4,
        max_scratch_corruptions: 2,
        max_faults: 15,
        ..FaultPlan::none()
    }
}

/// Re-parse the log and check it pins the run: the plan round-trips, and
/// the injected-fault events agree with the injector's statistics.
fn assert_log_replays(events: &EventLog, plan: &FaultPlan, stats: orv::cluster::fault::FaultStats) {
    // Everything below reads the *parsed* log, not the live one — a chaos
    // run must be reconstructible from its exported lines alone.
    let parsed = EventLog::from_json_lines(&events.to_json_lines()).unwrap();

    let plans: Vec<_> = parsed.iter().filter(|e| e.kind == "fault_plan").collect();
    assert_eq!(plans.len(), 1, "exactly one plan event per injector");
    let logged = FaultPlan::from_json_value(&plans[0].fields["plan"]).unwrap();
    assert_eq!(&logged, plan, "the event stream must pin the exact plan");

    let faults: Vec<_> = parsed
        .iter()
        .filter(|e| e.kind == "fault_injected")
        .collect();
    let by_kind = |k: &str| {
        faults
            .iter()
            .filter(|e| e.fields["kind"].as_str() == Some(k))
            .count() as u64
    };
    assert_eq!(by_kind("read_error"), stats.read_errors);
    assert_eq!(by_kind("send_drop"), stats.send_drops);
    assert_eq!(by_kind("scratch_error"), stats.scratch_errors);
    assert_eq!(by_kind("chunk_corrupt"), stats.chunk_corruptions);
    assert_eq!(by_kind("frame_corrupt"), stats.frame_corruptions);
    assert_eq!(by_kind("scratch_corrupt"), stats.scratch_corruptions);
    assert_eq!(
        faults.len() as u64,
        stats.read_errors
            + stats.read_delays
            + stats.send_drops
            + stats.send_delays
            + stats.scratch_errors
            + stats.corruptions()
            + stats.worker_panics,
        "every fired fault must be logged exactly once"
    );

    // Silent corruption is only tolerable because it is *never* silent:
    // every injected flip must surface as a `corruption_detected` event.
    let detected = parsed
        .iter()
        .filter(|e| e.kind == "corruption_detected")
        .count() as u64;
    assert_eq!(
        detected,
        stats.corruptions(),
        "checksums must catch 100% of injected corruptions"
    );

    // Draw indices are strictly increasing per (site, stream) — the
    // replay order. Streams are independent actors (storage node,
    // sender, compute node), so ordering across streams is a scheduler
    // artifact and deliberately unconstrained.
    let mut by_group: std::collections::BTreeMap<(String, u64), Vec<u64>> =
        std::collections::BTreeMap::new();
    for e in &faults {
        let site = e.fields["site"].as_str().unwrap().to_string();
        let stream = e.fields["stream"].as_u64().unwrap();
        let draw = e.fields["draw"].as_u64().unwrap();
        by_group.entry((site, stream)).or_default().push(draw);
    }
    for ((site, stream), draws) in by_group {
        assert!(
            draws.windows(2).all(|w| w[0] < w[1]),
            "draws at {site}/stream {stream} must be strictly increasing: {draws:?}"
        );
    }
}

#[test]
fn grace_hash_chaos_run_is_replayable_from_logs() {
    let (d, t1, t2) = two_tables();
    let plan = chaos_plan();
    let obs = Obs::enabled();
    let injector = plan.clone().injector_with_events(obs.events.clone());
    let cfg = GraceHashConfig {
        n_compute: 2,
        collect_results: true,
        faults: Some(injector.clone()),
        obs: obs.clone(),
        ..Default::default()
    };
    let out = grace_hash_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
    let oracle = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
    assert_eq!(sort_records(out.records.unwrap()), sort_records(oracle));

    let stats = injector.stats();
    assert!(
        stats.read_errors + stats.send_drops + stats.scratch_errors > 0,
        "the chaos plan must actually fire: {stats:?}"
    );
    assert!(
        stats.corruptions() > 0,
        "the corruption kinds must actually fire: {stats:?}"
    );
    assert_eq!(
        out.stats.corruptions_detected,
        stats.corruptions(),
        "every injected corruption must be detected: {stats:?}"
    );
    assert_log_replays(&obs.events, &plan, stats);
}

#[test]
fn indexed_join_chaos_run_is_replayable_from_logs() {
    let (d, t1, t2) = two_tables();
    let plan = FaultPlan {
        send_drop_prob: 0.0,
        scratch_error_prob: 0.0,
        ..chaos_plan()
    };
    let obs = Obs::enabled();
    let injector = plan.clone().injector_with_events(obs.events.clone());
    let cfg = IndexedJoinConfig {
        n_compute: 2,
        collect_results: true,
        faults: Some(injector.clone()),
        obs: obs.clone(),
        ..Default::default()
    };
    let out = indexed_join(&d, t1, t2, &["x", "y", "z"], &cfg).unwrap();
    let oracle = nested_loop_join(&d, t1, t2, &["x", "y", "z"], None).unwrap();
    assert_eq!(sort_records(out.records.unwrap()), sort_records(oracle));

    let stats = injector.stats();
    assert!(stats.read_errors > 0, "{stats:?}");
    // Reported read errors and detected chunk corruptions share the
    // fetch retry loop, so both surface as read retries.
    assert_eq!(
        stats.read_errors + stats.chunk_corruptions,
        out.stats.read_retries
    );
    assert_eq!(out.stats.corruptions_detected, stats.corruptions());
    assert_log_replays(&obs.events, &plan, stats);
}
