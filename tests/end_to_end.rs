//! End-to-end integration: real chunk files on disk, different binary
//! layouts, both join QES, the planner, and the query layer — the whole
//! Figure 2 stack.

use orv::bds::{generate_dataset, BdsService, DatasetSpec, Deployment};
use orv::join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig, JoinAlgorithm};
use orv::layout::{Endian, RecordOrder};
use orv::query::QueryEngine;
use orv::types::{SubTableId, Value};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("orv-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn on_disk_deployment_full_stack() {
    let dir = tmpdir("stack");
    let deployment = Deployment::on_disk(&dir, 3).unwrap();

    // Heterogeneous layouts: the extractor abstraction must hide them.
    let t1 = DatasetSpec::builder("t1")
        .grid([16, 16, 2])
        .partition([8, 8, 2])
        .scalar_attrs(&["oilp"])
        .seed(10)
        .header(32)
        .endian(Endian::Big)
        .build();
    let t2 = DatasetSpec::builder("t2")
        .grid([16, 16, 2])
        .partition([4, 16, 2])
        .scalar_attrs(&["wp"])
        .seed(20)
        .order(RecordOrder::ColumnMajor)
        .build();
    let h1 = generate_dataset(&t1, &deployment).unwrap();
    let h2 = generate_dataset(&t2, &deployment).unwrap();

    // Chunk files actually exist on disk, one file per table per node.
    let files: Vec<_> = (0..3)
        .flat_map(|n| {
            std::fs::read_dir(dir.join(format!("node{n}")))
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
        })
        .collect();
    assert!(files.iter().any(|f| f == "t1.dat"));
    assert!(files.iter().any(|f| f == "t2.dat"));

    // Query the stack.
    let engine = QueryEngine::new(deployment);
    engine
        .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .unwrap();
    let all = engine.execute("SELECT * FROM v1").unwrap();
    assert_eq!(all.rows.len() as u64, h1.total_tuples());
    assert_eq!(all.rows.len() as u64, h2.total_tuples());
    let agg = engine
        .execute("SELECT COUNT(*), MIN(oilp), MAX(wp) FROM v1 WHERE z = 1")
        .unwrap();
    assert_eq!(agg.rows[0].get(0), Value::I64(256));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bds_serves_each_node_locally_on_disk() {
    let dir = tmpdir("bds");
    let deployment = Deployment::on_disk(&dir, 2).unwrap();
    let h = generate_dataset(
        &DatasetSpec::builder("t")
            .grid([8, 8, 1])
            .partition([4, 4, 1])
            .scalar_attrs(&["p"])
            .seed(5)
            .build(),
        &deployment,
    )
    .unwrap();
    let services = BdsService::for_all_nodes(&deployment).unwrap();
    let mut rows = 0;
    for chunk in deployment.metadata().all_chunks(h.table).unwrap() {
        let id = SubTableId {
            table: h.table,
            chunk,
        };
        let node = deployment.metadata().chunk_meta(id).unwrap().node;
        rows += services[node.index()].subtable(id).unwrap().num_rows();
    }
    assert_eq!(rows as u64, h.total_tuples());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn forced_ij_and_gh_agree_on_disk() {
    let dir = tmpdir("joins");
    let deployment = Deployment::on_disk(&dir, 2).unwrap();
    let h1 = generate_dataset(
        &DatasetSpec::builder("a")
            .grid([16, 8, 2])
            .partition([8, 4, 2])
            .scalar_attrs(&["u"])
            .seed(1)
            .build(),
        &deployment,
    )
    .unwrap();
    let h2 = generate_dataset(
        &DatasetSpec::builder("b")
            .grid([16, 8, 2])
            .partition([4, 8, 1])
            .scalar_attrs(&["v"])
            .seed(2)
            .build(),
        &deployment,
    )
    .unwrap();
    let attrs = ["x", "y", "z"];
    let ij = indexed_join(
        &deployment,
        h1.table,
        h2.table,
        &attrs,
        &IndexedJoinConfig {
            n_compute: 3,
            collect_results: true,
            ..Default::default()
        },
    )
    .unwrap();
    let gh = grace_hash_join(
        &deployment,
        h1.table,
        h2.table,
        &attrs,
        &GraceHashConfig {
            n_compute: 3,
            collect_results: true,
            scratch: orv::cluster::ScratchKind::TempFile,
            ..Default::default()
        },
    )
    .unwrap();
    let sort = |mut v: Vec<orv::types::Record>| {
        v.sort_by(|a, b| a.values().cmp(b.values()));
        v
    };
    assert_eq!(sort(ij.records.unwrap()), sort(gh.records.unwrap()));
    assert_eq!(ij.stats.result_tuples, 256);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_deployment_from_saved_catalog() {
    let dir = tmpdir("reopen");
    let catalog_path = dir.join("catalog.json");
    {
        let deployment = Deployment::on_disk(&dir, 2).unwrap();
        for (name, seed, scalar) in [("t1", 1u64, "oilp"), ("t2", 2, "wp")] {
            generate_dataset(
                &DatasetSpec::builder(name)
                    .grid([8, 8, 2])
                    .partition([4, 4, 2])
                    .scalar_attrs(&[scalar])
                    .seed(seed)
                    .build(),
                &deployment,
            )
            .unwrap();
        }
        // Run a join once so the page-level join index gets persisted too.
        let md = deployment.metadata();
        let (t1, t2) = (md.table_id("t1").unwrap(), md.table_id("t2").unwrap());
        indexed_join(
            &deployment,
            t1,
            t2,
            &["x", "y", "z"],
            &IndexedJoinConfig::default(),
        )
        .unwrap();
        deployment.save_catalog(&catalog_path).unwrap();
    } // original deployment dropped

    // Cold restart: only the data files and the catalog JSON exist.
    let reopened = Deployment::reopen(&dir, 2, &catalog_path).unwrap();
    let md = reopened.metadata();
    let (t1, t2) = (md.table_id("t1").unwrap(), md.table_id("t2").unwrap());
    assert!(
        md.get_join_index(t1, t2, &["x", "y", "z"]).is_some(),
        "join index persisted"
    );
    let engine = QueryEngine::new(reopened);
    engine
        .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .unwrap();
    let r = engine.execute("SELECT COUNT(*) FROM v1").unwrap();
    assert_eq!(r.rows[0].get(0), Value::I64(128));
    let r = engine
        .execute("SELECT * FROM t1 WHERE x IN [0, 1]")
        .unwrap();
    assert_eq!(r.rows.len(), 32);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn engine_respects_forced_algorithm() {
    let deployment = Deployment::in_memory(2);
    for (name, seed) in [("t1", 1u64), ("t2", 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([8, 8, 1])
                .partition([4, 4, 1])
                .scalar_attrs(if seed == 1 { &["a"] } else { &["b"] })
                .seed(seed)
                .build(),
            &deployment,
        )
        .unwrap();
    }
    let engine = QueryEngine::new(deployment).force_algorithm(Some(JoinAlgorithm::GraceHash));
    engine
        .execute("CREATE VIEW v AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .unwrap();
    let r = engine.execute("SELECT COUNT(*) FROM v").unwrap();
    assert_eq!(r.rows[0].get(0), Value::I64(64));
}
