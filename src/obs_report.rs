//! Predicted-vs-measured reporting: run a join QES with observability
//! enabled, evaluate the Section 5 cost model for the same dataset and
//! system, and diff the two phase by phase.
//!
//! The mapping from span leaves to cost-model terms:
//!
//! | algorithm | phase | spans (critical path over groups) | model term |
//! |---|---|---|---|
//! | IJ | `transfer` | `n{j}/transfer` | `Transfer_IJ` |
//! | IJ | `build` | `n{j}/build` | `BuildHT_IJ` |
//! | IJ | `probe` | `n{j}/probe` | `Lookup_IJ` |
//! | GH | `transfer` | `s{n}/read + s{n}/send` | `Transfer_GH` |
//! | GH | `scratch_write` | `c{j}/scratch_write` | `Write_GH` |
//! | GH | `scratch_read` | `c{j}/scratch_read` | `Read_GH` |
//! | GH | `cpu` | `c{j}/build + c{j}/probe` | `Cpu_GH` |
//!
//! "Critical path over groups" means: for every node group (`n0`, `s1`,
//! `c2`, …) sum the selected leaves, then take the maximum across groups —
//! matching the cost models, which charge parallel per-node work at the
//! slowest node. Span time that maps to no model term (`s{n}/partition`
//! hashing, `bds{n}` internals, `engine` planning) is reported separately
//! as unmodeled extras, keyed by `{group class}/{leaf}`.

use orv_bds::{generate_dataset, DatasetHandle, DatasetSpec, Deployment};
use orv_costmodel::{
    calibrate_host, Calibration, CostParams, GraceHashModel, IndexedJoinModel, SystemParams,
};
use orv_join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig, JoinOutput};
use orv_obs::{JsonValue, Obs, ObsReport, PhaseRow, RunReport};
use orv_types::Result;
use std::collections::BTreeMap;

/// One observed join execution: the predicted-vs-measured breakdown plus
/// the raw output and the observability handle it was collected with.
pub struct JoinObservation {
    /// The per-phase breakdown.
    pub report: RunReport,
    /// The join's output (stats + optional records).
    pub output: JoinOutput,
    /// The handle holding the full span/event/metric streams.
    pub obs: Obs,
}

/// Cost-model dataset parameters for a generated table pair. `n_e` comes
/// from the persisted page-level join index when available (an IJ run
/// stores it), falling back to `max(m_R, m_S)` — exact for the aligned
/// partitions the generator produces.
pub fn dataset_params(
    deployment: &Deployment,
    left: &DatasetHandle,
    right: &DatasetHandle,
    join_attrs: &[&str],
) -> CostParams {
    let mut d = CostParams {
        t: left.total_tuples() as f64,
        c_r: left.tuples_per_chunk() as f64,
        c_s: right.tuples_per_chunk() as f64,
        n_e: 0.0,
        rs_r: left.record_size() as f64,
        rs_s: right.record_size() as f64,
    };
    d.n_e = deployment
        .metadata()
        .get_join_index(left.table, right.table, join_attrs)
        .map(|p| p.len() as f64)
        .unwrap_or_else(|| d.m_r().max(d.m_s()))
        .max(1.0);
    d
}

/// System parameters describing *this host* the way `orv-bench` models it:
/// crossbeam channels move bytes at memory speed, and Grace Hash's bucket
/// "I/O" is really per-byte serialization CPU, which calibration measures
/// as `encode_bw`/`decode_bw`.
pub fn host_system_params(cal: &Calibration, n_storage: usize, n_compute: usize) -> SystemParams {
    SystemParams {
        net_bw: 8.0e9,
        read_io_bw: cal.decode_bw,
        write_io_bw: cal.encode_bw,
        n_s: n_storage as f64,
        n_j: n_compute as f64,
        alpha_build: cal.alpha_build,
        alpha_lookup: cal.alpha_lookup,
    }
}

/// True when `group` is `prefix` followed by a node index (`n0`, `c12`).
fn in_class(group: &str, prefix: &str) -> bool {
    group
        .strip_prefix(prefix)
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// Group name with the node index stripped: `bds1` → `bds`, `n0` → `n`.
fn group_class(group: &str) -> &str {
    group.trim_end_matches(|c: char| c.is_ascii_digit())
}

/// Critical-path time of `leaves` over all groups in class `prefix`: per
/// group, sum the leaves; across groups, take the max.
fn max_over_class(
    by_group: &BTreeMap<String, BTreeMap<String, f64>>,
    prefix: &str,
    leaves: &[&str],
) -> f64 {
    by_group
        .iter()
        .filter(|(g, _)| in_class(g, prefix))
        .map(|(_, per_leaf)| {
            leaves
                .iter()
                .map(|l| per_leaf.get(*l).copied().unwrap_or(0.0))
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

/// Sum every `(class, leaf)` that the phase mapping did not consume.
/// `consumed` maps a class prefix to the leaves it accounted for.
fn unmodeled_extras(
    by_group: &BTreeMap<String, BTreeMap<String, f64>>,
    consumed: &[(&str, &[&str])],
) -> BTreeMap<String, f64> {
    let mut extras = BTreeMap::new();
    for (group, per_leaf) in by_group {
        for (leaf, secs) in per_leaf {
            let taken = consumed
                .iter()
                .any(|(prefix, leaves)| in_class(group, prefix) && leaves.contains(&leaf.as_str()));
            if !taken {
                *extras
                    .entry(format!("{}/{leaf}", group_class(group)))
                    .or_insert(0.0) += secs;
            }
        }
    }
    extras
}

/// Run the Indexed Join with observability enabled and diff the measured
/// phase times against `IndexedJoinModel` under `sys`.
pub fn observe_indexed_join(
    deployment: &Deployment,
    left: &DatasetHandle,
    right: &DatasetHandle,
    join_attrs: &[&str],
    n_compute: usize,
    sys: &SystemParams,
) -> Result<JoinObservation> {
    let obs = Obs::enabled();
    let cfg = IndexedJoinConfig {
        n_compute,
        obs: obs.clone(),
        ..Default::default()
    };
    let output = indexed_join(deployment, left.table, right.table, join_attrs, &cfg)?;
    let d = dataset_params(deployment, left, right, join_attrs);
    let model = IndexedJoinModel::evaluate(&d, sys)?;
    let by_group = obs.spans.group_leaf_totals();
    let phase = |name: &str, predicted: f64, leaves: &[&str]| PhaseRow {
        phase: name.to_string(),
        predicted_secs: predicted,
        measured_secs: max_over_class(&by_group, "n", leaves),
    };
    let report = RunReport {
        algorithm: "indexed_join".to_string(),
        phases: vec![
            phase("transfer", model.transfer, &["transfer"]),
            phase("build", model.build, &["build"]),
            phase("probe", model.lookup, &["probe"]),
        ],
        predicted_total_secs: model.total(),
        measured_wall_secs: output.stats.wall_secs,
        extra_measured_secs: unmodeled_extras(&by_group, &[("n", &["transfer", "build", "probe"])]),
    };
    report.validate()?;
    Ok(JoinObservation {
        report,
        output,
        obs,
    })
}

/// Run Grace Hash with observability enabled and diff the measured phase
/// times against `GraceHashModel` under `sys`.
pub fn observe_grace_hash(
    deployment: &Deployment,
    left: &DatasetHandle,
    right: &DatasetHandle,
    join_attrs: &[&str],
    n_compute: usize,
    sys: &SystemParams,
) -> Result<JoinObservation> {
    let obs = Obs::enabled();
    let cfg = GraceHashConfig {
        n_compute,
        obs: obs.clone(),
        ..Default::default()
    };
    let output = grace_hash_join(deployment, left.table, right.table, join_attrs, &cfg)?;
    let d = dataset_params(deployment, left, right, join_attrs);
    let model = GraceHashModel::evaluate(&d, sys)?;
    let by_group = obs.spans.group_leaf_totals();
    let report = RunReport {
        algorithm: "grace_hash".to_string(),
        phases: vec![
            PhaseRow {
                phase: "transfer".to_string(),
                predicted_secs: model.transfer,
                measured_secs: max_over_class(&by_group, "s", &["read", "send"]),
            },
            PhaseRow {
                phase: "scratch_write".to_string(),
                predicted_secs: model.write,
                measured_secs: max_over_class(&by_group, "c", &["scratch_write"]),
            },
            PhaseRow {
                phase: "scratch_read".to_string(),
                predicted_secs: model.read,
                measured_secs: max_over_class(&by_group, "c", &["scratch_read"]),
            },
            PhaseRow {
                phase: "cpu".to_string(),
                predicted_secs: model.cpu,
                measured_secs: max_over_class(&by_group, "c", &["build", "probe"]),
            },
        ],
        predicted_total_secs: model.total(),
        measured_wall_secs: output.stats.wall_secs,
        extra_measured_secs: unmodeled_extras(
            &by_group,
            &[
                ("s", &["read", "send"]),
                ("c", &["scratch_write", "scratch_read", "build", "probe"]),
            ],
        ),
    };
    report.validate()?;
    Ok(JoinObservation {
        report,
        output,
        obs,
    })
}

/// Shape of the dataset pair the standard report runs over.
#[derive(Clone, Copy, Debug)]
pub struct ReportConfig {
    /// Grid extent of both tables.
    pub grid: [u64; 3],
    /// Partition of the left (inner) table.
    pub left_partition: [u64; 3],
    /// Partition of the right (outer) table.
    pub right_partition: [u64; 3],
    /// Storage nodes.
    pub n_storage: usize,
    /// Compute-node threads per QES.
    pub n_compute: usize,
    /// Tuples the host calibration loops over.
    pub calibration_tuples: u64,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            grid: [16, 16, 4],
            left_partition: [8, 8, 4],
            right_partition: [4, 16, 2],
            n_storage: 2,
            n_compute: 2,
            calibration_tuples: 200_000,
        }
    }
}

/// Generate a dataset pair, run **both** QES implementations over it with
/// observability on, and assemble the combined predicted-vs-measured
/// report (IJ first, so its run persists the join index `n_e` that both
/// models read).
pub fn standard_report(cfg: &ReportConfig) -> Result<ObsReport> {
    let deployment = Deployment::in_memory(cfg.n_storage);
    let left = generate_dataset(
        &DatasetSpec::builder("t1")
            .grid(cfg.grid)
            .partition(cfg.left_partition)
            .scalar_attrs(&["oilp"])
            .seed(1)
            .build(),
        &deployment,
    )?;
    let right = generate_dataset(
        &DatasetSpec::builder("t2")
            .grid(cfg.grid)
            .partition(cfg.right_partition)
            .scalar_attrs(&["wp"])
            .seed(2)
            .build(),
        &deployment,
    )?;
    let attrs = ["x", "y", "z"];
    let cal = calibrate_host(cfg.calibration_tuples);
    let sys = host_system_params(&cal, cfg.n_storage, cfg.n_compute);

    let ij = observe_indexed_join(&deployment, &left, &right, &attrs, cfg.n_compute, &sys)?;
    let gh = observe_grace_hash(&deployment, &left, &right, &attrs, cfg.n_compute, &sys)?;

    let mut metrics = ij.obs.metrics.snapshot();
    metrics.merge(&gh.obs.metrics.snapshot())?;

    let mut notes: BTreeMap<String, JsonValue> = BTreeMap::new();
    notes.insert(
        "grid".to_string(),
        JsonValue::Array(cfg.grid.iter().map(|&g| JsonValue::from(g)).collect()),
    );
    notes.insert("total_tuples".to_string(), left.total_tuples().into());
    notes.insert(
        "result_tuples".to_string(),
        ij.output.stats.result_tuples.into(),
    );
    notes.insert(
        "algorithms_agree".to_string(),
        (ij.output.stats.result_tuples == gh.output.stats.result_tuples).into(),
    );

    let report = ObsReport {
        runs: vec![ij.report, gh.report],
        metrics,
        notes,
    };
    report.validate()?;
    Ok(report)
}
