//! # orv — Object-Relational Views of Scientific Datasets
//!
//! A reproduction of *"On Creating Efficient Object-relational Views of
//! Scientific Datasets"* (Narayanan, Kurc, Catalyurek, Saltz — ICPP 2006).
//!
//! The library lets you expose terabyte-scale scientific datasets — stored as
//! application-format flat files ("chunks") spread over the storage nodes of
//! a coupled storage/compute cluster — as object-relational tables and views,
//! without ingesting them into a DBMS.
//!
//! The main pieces, mirroring the paper's Figure 2:
//!
//! * [`orv_bds`] — **Basic Data Sources**: an extractor plus a set of chunks,
//!   producing *sub-tables* on request. Includes the synthetic oil-reservoir
//!   dataset generator used throughout the paper's evaluation.
//! * [`orv_layout`] / [`orv_chunk`] — the layout-description language that
//!   generates extractors, and the chunk binary format / columnar sub-table
//!   containers they operate on.
//! * [`orv_metadata`] — the **MetaData service**: chunk catalog with an
//!   R-tree index over chunk bounding boxes.
//! * [`orv_join`] — the two join **Query Execution Systems**: page-level
//!   Indexed Join (IJ) and Grace Hash (GH), both on a real threaded cluster
//!   runtime and on a discrete-event cluster simulator.
//! * [`orv_costmodel`] — the paper's Section 5 cost models and Section 6.2
//!   crossover analysis, used by the planner to pick IJ vs GH.
//! * [`orv_query`] — **Derived Data Sources**: views (`CREATE VIEW v AS
//!   SELECT ... JOIN ...`), a small SQL subset, and the Query Planning
//!   Service.
//! * [`orv_cluster`] — the cluster substrate (threaded runtime + simulator).
//! * [`orv_obs`] — the observability layer: metrics registry, span timers
//!   and structured events threaded through every service, plus the
//!   predicted-vs-measured report glue in [`obs_report`].
//!
//! ## Quickstart
//!
//! ```
//! use orv::prelude::*;
//!
//! // Generate a small oil-reservoir style dataset on 2 storage nodes.
//! let spec = DatasetSpec::builder("t1")
//!     .grid([16, 16, 4])
//!     .partition([8, 8, 4])
//!     .scalar_attrs(&["oilp"])
//!     .seed(7)
//!     .build();
//! let deployment = Deployment::in_memory(2);
//! let t1 = generate_dataset(&spec, &deployment).unwrap();
//! assert_eq!(t1.total_tuples(), 16 * 16 * 4);
//! ```
pub use orv_bds as bds;
pub use orv_chunk as chunk;
pub use orv_cluster as cluster;
pub use orv_costmodel as costmodel;
pub use orv_join as join;
pub use orv_layout as layout;
pub use orv_metadata as metadata;
pub use orv_obs as obs;
pub use orv_query as query;
pub use orv_types as types;

pub mod obs_report;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use orv_bds::{generate_dataset, DatasetHandle, DatasetSpec, Deployment};
    pub use orv_chunk::SubTable;
    pub use orv_costmodel::{CostParams, GraceHashModel, IndexedJoinModel, SystemParams};
    pub use orv_join::{GraceHashConfig, IndexedJoinConfig, JoinAlgorithm};
    pub use orv_metadata::MetadataService;
    pub use orv_obs::{Obs, ObsReport, RunReport};
    pub use orv_query::{Catalog, Planner, QueryEngine};
    pub use orv_types::{BoundingBox, Schema, Value};

    pub use crate::obs_report::{observe_grace_hash, observe_indexed_join, standard_report};
}
