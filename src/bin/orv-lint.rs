//! Workspace invariant checker driver.
//!
//! ```text
//! cargo run --release --bin orv-lint              # human output, exit 1 on findings
//! cargo run --release --bin orv-lint -- --json    # one JSON object per finding
//! cargo run --release --bin orv-lint -- --github  # GitHub Actions annotations
//! cargo run --release --bin orv-lint -- path/     # lint a different root
//! ```
//!
//! Exit codes: 0 clean, 1 findings (including malformed suppressions),
//! 2 I/O failure while walking or reading sources.

use orv_lint::{exit_code, lint_workspace, Diagnostic, RULE_IDS};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
orv-lint — workspace invariant checker (rules L001..L010; file rules are
DESIGN.md §10, structural rules L008..L010 are DESIGN.md §15)

USAGE: orv-lint [--json | --github] [ROOT]

  --json    one JSON object per finding (JSON lines), no summary
  --github  GitHub Actions `::error` workflow commands, one per finding,
            so the CI gate renders findings as inline PR annotations
  ROOT      workspace root to lint (default: current directory)

Suppress a finding at its site with a justified comment:
  // orv-lint: allow(L001) -- <why this site is provably fine>
";

/// `::error file=…,line=…,title=…::…` — one workflow command per finding.
/// Evidence steps ride in the message (annotations are single blocks);
/// GitHub requires `%0A` for newlines inside a command value.
fn github_annotation(d: &Diagnostic) -> String {
    let mut msg = d.message.clone();
    for ev in &d.evidence {
        msg.push_str(&format!("%0A  {}:{}: {}", ev.file, ev.line, ev.note));
    }
    format!(
        "::error file={},line={},title=orv-lint {}::{}",
        d.file,
        d.line,
        d.rule,
        msg.replace('\n', "%0A")
    )
}

#[derive(PartialEq)]
enum Output {
    Human,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut output = Output::Human;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => output = Output::Json,
            "--github" => output = Output::Github,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let diags = match lint_workspace(&root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("orv-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match output {
        Output::Json => {
            for d in &diags {
                println!("{}", d.to_json());
            }
        }
        Output::Github => {
            for d in &diags {
                println!("{}", github_annotation(d));
            }
        }
        Output::Human => {
            for d in &diags {
                println!("{}", d.human());
            }
            if diags.is_empty() {
                println!(
                    "orv-lint: clean ({} rules: {})",
                    RULE_IDS.len() - 1,
                    RULE_IDS[1..].join(", ")
                );
            } else {
                println!("orv-lint: {} finding(s)", diags.len());
            }
        }
    }
    ExitCode::from(exit_code(&diags))
}
