//! Workspace invariant checker driver.
//!
//! ```text
//! cargo run --release --bin orv-lint            # human output, exit 1 on findings
//! cargo run --release --bin orv-lint -- --json  # one JSON object per finding
//! cargo run --release --bin orv-lint -- path/   # lint a different root
//! ```
//!
//! Exit codes: 0 clean, 1 findings (including malformed suppressions),
//! 2 I/O failure while walking or reading sources.

use orv_lint::{exit_code, lint_workspace, RULE_IDS};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
orv-lint — workspace invariant checker (rules L001..L006, see DESIGN.md §10)

USAGE: orv-lint [--json] [ROOT]

  --json   one JSON object per finding (JSON lines), no summary
  ROOT     workspace root to lint (default: current directory)

Suppress a finding at its site with a justified comment:
  // orv-lint: allow(L001) -- <why this site is provably fine>
";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let diags = match lint_workspace(&root) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("orv-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        for d in &diags {
            println!("{}", d.to_json());
        }
    } else {
        for d in &diags {
            println!("{}", d.human());
        }
        if diags.is_empty() {
            println!(
                "orv-lint: clean ({} rules: {})",
                RULE_IDS.len() - 1,
                RULE_IDS[1..].join(", ")
            );
        } else {
            println!("orv-lint: {} finding(s)", diags.len());
        }
    }
    ExitCode::from(exit_code(&diags))
}
