//! `orv-cli` — interactive front door to the view framework.
//!
//! ```text
//! orv-cli repl  [--nodes N] [--grid X,Y,Z] [--part1 X,Y,Z] [--part2 X,Y,Z]
//!               [--data-dir DIR]
//!     Generate the two-table demo dataset and enter a SQL REPL.
//!
//! orv-cli simulate --grid X,Y,Z --p X,Y,Z --q X,Y,Z [--ns N] [--nj N]
//!     Predict IJ vs GH on the paper-calibrated cluster simulator.
//! ```
//!
//! REPL commands: any supported SQL statement, plus `.tables`, `.views`,
//! `.help`, `.quit`.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::ClusterSpec;
use orv::costmodel::{CostParams, GraceHashModel, IndexedJoinModel, SystemParams};
use orv::join::{simulate_grace_hash, simulate_indexed_join, SimProblem};
use orv::query::QueryEngine;
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("repl") | None => repl(&args),
        Some("simulate") => simulate(&args),
        Some("--help") | Some("-h") | Some("help") => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    println!(
        "orv-cli — object-relational views over scientific datasets\n\n\
         USAGE:\n  orv-cli repl [--nodes N] [--grid X,Y,Z] [--part1 X,Y,Z] [--part2 X,Y,Z] [--data-dir DIR]\n  \
         orv-cli simulate --grid X,Y,Z --p X,Y,Z --q X,Y,Z [--ns N] [--nj N]\n"
    );
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_triple(s: &str, what: &str) -> Result<[u64; 3], String> {
    let parts: Vec<u64> = s
        .split(',')
        .map(|p| p.trim().parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad {what} `{s}`: {e}"))?;
    if parts.len() != 3 {
        return Err(format!(
            "{what} must be three comma-separated integers, got `{s}`"
        ));
    }
    Ok([parts[0], parts[1], parts[2]])
}

fn repl(args: &[String]) -> i32 {
    let nodes: usize = flag(args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let grid = flag(args, "--grid")
        .map(|v| parse_triple(v, "--grid"))
        .unwrap_or(Ok([32, 32, 4]));
    let part1 = flag(args, "--part1")
        .map(|v| parse_triple(v, "--part1"))
        .unwrap_or(Ok([16, 16, 4]));
    let part2 = flag(args, "--part2")
        .map(|v| parse_triple(v, "--part2"))
        .unwrap_or(Ok([8, 32, 4]));
    let (grid, part1, part2) = match (grid, part1, part2) {
        (Ok(g), Ok(p1), Ok(p2)) => (g, p1, p2),
        (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let deployment = match flag(args, "--data-dir") {
        Some(dir) => match Deployment::on_disk(dir, nodes) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("cannot open data dir: {e}");
                return 1;
            }
        },
        None => Deployment::in_memory(nodes),
    };
    for (name, scalar, seed, part) in [("t1", "oilp", 1u64, part1), ("t2", "wp", 2, part2)] {
        let spec = DatasetSpec::builder(name)
            .grid(grid)
            .partition(part)
            .scalar_attrs(&[scalar])
            .seed(seed)
            .build();
        if let Err(e) = generate_dataset(&spec, &deployment) {
            eprintln!("dataset generation failed: {e}");
            return 1;
        }
    }
    println!(
        "generated t1(x,y,z,oilp) and t2(x,y,z,wp): {} tuples each over {nodes} storage nodes",
        grid.iter().product::<u64>()
    );
    println!("try:  CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)");
    println!("      SELECT z, AVG(wp) FROM v1 GROUP BY z        (.help for more)\n");

    let engine = QueryEngine::new(deployment);
    let stdin = std::io::stdin();
    loop {
        print!("orv> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return 0, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                return 1;
            }
        }
        let line = line.trim();
        match line {
            "" => continue,
            ".quit" | ".exit" | "\\q" => return 0,
            ".help" => {
                println!(
                    "statements:\n  CREATE VIEW v AS SELECT * FROM a JOIN b ON (x, y, ...) [WHERE ...]\n  \
                     SELECT cols|aggs FROM table_or_view [WHERE attr IN [lo, hi] AND ...] [GROUP BY ...]\n\
                     commands: .tables  .views  .quit"
                );
            }
            ".tables" => {
                println!("t1, t2 (base tables)");
            }
            ".views" => {
                let names = engine.catalog().names();
                if names.is_empty() {
                    println!("(no views yet)");
                } else {
                    println!("{}", names.join(", "));
                }
            }
            sql => match engine.execute(sql) {
                Ok(result) => {
                    if !result.columns.is_empty() {
                        println!("{}", result.columns.join(" | "));
                        for row in result.rows.iter().take(25) {
                            println!("{row}");
                        }
                        if result.rows.len() > 25 {
                            println!("... ({} rows total)", result.rows.len());
                        } else {
                            println!("({} rows)", result.rows.len());
                        }
                    } else {
                        println!("ok");
                    }
                    if let Some(explain) = result.explain {
                        println!(
                            "[planner: {} — modelled IJ {:.3}s vs GH {:.3}s, n_e = {}]",
                            explain.algorithm,
                            explain.choice.ij_total,
                            explain.choice.gh_total,
                            explain.dataset.n_e
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        }
    }
}

fn simulate(args: &[String]) -> i32 {
    let (grid, p, q) = match (
        flag(args, "--grid")
            .ok_or("missing --grid".to_string())
            .and_then(|v| parse_triple(v, "--grid")),
        flag(args, "--p")
            .ok_or("missing --p".to_string())
            .and_then(|v| parse_triple(v, "--p")),
        flag(args, "--q")
            .ok_or("missing --q".to_string())
            .and_then(|v| parse_triple(v, "--q")),
    ) {
        (Ok(g), Ok(p), Ok(q)) => (g, p, q),
        (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let ns: usize = flag(args, "--ns").and_then(|v| v.parse().ok()).unwrap_or(5);
    let nj: usize = flag(args, "--nj").and_then(|v| v.parse().ok()).unwrap_or(5);

    let pr = SimProblem::from_regular(grid, p, q, 16.0, 16.0, 280.0, 230.0);
    let spec = ClusterSpec::paper_testbed(ns, nj);
    let d = CostParams {
        t: pr.t,
        c_r: pr.c_r,
        c_s: pr.c_s,
        n_e: pr.n_e(),
        rs_r: pr.rs_r,
        rs_s: pr.rs_s,
    };
    let s = SystemParams::from_cluster(&spec, 280.0, 230.0);
    println!(
        "T = {:.3e}, c_R = {}, c_S = {}, n_e = {:.3e}, n_e·c_S = {:.3e}, edge ratio = {:.3e}",
        pr.t,
        pr.c_r,
        pr.c_s,
        pr.n_e(),
        pr.n_e() * pr.c_s,
        d.edge_ratio()
    );
    match (
        simulate_indexed_join(&pr, &spec),
        simulate_grace_hash(&pr, &spec),
        IndexedJoinModel::evaluate(&d, &s),
        GraceHashModel::evaluate(&d, &s),
    ) {
        (Ok(ij), Ok(gh), Ok(ijm), Ok(ghm)) => {
            println!(
                "indexed join : sim {:>10.2}s   model {:>10.2}s",
                ij.total_secs,
                ijm.total()
            );
            println!(
                "grace hash   : sim {:>10.2}s   model {:>10.2}s",
                gh.total_secs,
                ghm.total()
            );
            let winner = if ij.total_secs < gh.total_secs {
                "IJ"
            } else {
                "GH"
            };
            println!("recommendation: {winner}");
            0
        }
        (Err(e), ..) | (_, Err(e), ..) | (_, _, Err(e), _) | (.., Err(e)) => {
            eprintln!("simulation failed: {e}");
            1
        }
    }
}
