//! Paper-scale what-if analysis on the cluster simulator.
//!
//! Plans a 2-billion-tuple join on clusters you do not have: the paper's
//! 2001-era testbed, the same testbed with a modern CPU, and an NFS-backed
//! configuration — showing how the IJ/GH decision moves with hardware
//! (Sections 6.2's "existing trends" discussion).
//!
//! ```text
//! cargo run --release --example cluster_sim
//! ```

use orv::cluster::ClusterSpec;
use orv::join::{simulate_grace_hash, simulate_indexed_join, SimProblem};
use orv::types::Result;

const GAMMA_BUILD: f64 = 280.0;
const GAMMA_LOOKUP: f64 = 230.0;

fn run(label: &str, pr: &SimProblem, spec: &ClusterSpec) -> Result<()> {
    let ij = simulate_indexed_join(pr, spec)?;
    let gh = simulate_grace_hash(pr, spec)?;
    let winner = if ij.total_secs < gh.total_secs {
        "IJ"
    } else {
        "GH"
    };
    println!(
        "{label:<42} IJ {:>9.1}s   GH {:>9.1}s   → {winner}",
        ij.total_secs, gh.total_secs
    );
    Ok(())
}

fn main() -> Result<()> {
    // A 2.1-billion-tuple join (the paper's Figure 6 maximum), moderately
    // mismatched partitions.
    let grid = [65536, 32768, 1];
    let pr = SimProblem::from_regular(
        grid,
        [1024, 256, 1],
        [256, 1024, 1],
        16.0,
        16.0,
        GAMMA_BUILD,
        GAMMA_LOOKUP,
    );
    println!(
        "join of T = {:.2e} tuples, n_e·c_S = {:.2e}\n",
        pr.t,
        pr.n_e() * pr.c_s
    );

    run(
        "paper testbed (5+5, PIII 933)",
        &pr,
        &ClusterSpec::paper_testbed(5, 5),
    )?;

    let mut fast_cpu = ClusterSpec::paper_testbed(5, 5);
    fast_cpu.cpu_work_factor = 1.0 / 30.0; // a ~30× faster core
    run("same cluster, modern CPU (30×)", &pr, &fast_cpu)?;

    let mut fast_everything = fast_cpu.clone();
    fast_everything.nic_bw = 1.25e9; // 10 GbE
    fast_everything.disk_read_bw = 500.0e6;
    fast_everything.disk_write_bw = 450.0e6;
    fast_everything.scratch_read_bw = 500.0e6;
    run("modern CPU + 10GbE + SSDs", &pr, &fast_everything)?;

    run(
        "NFS single file server (4 compute)",
        &pr,
        &ClusterSpec::paper_testbed_nfs(4),
    )?;

    let mut big = ClusterSpec::paper_testbed(10, 10);
    big.mem_per_node = 2 << 30;
    run("10+10 nodes, 2 GB RAM each", &pr, &big)?;

    println!(
        "\nSection 6.2's trend: as computing power grows faster than I/O, IJ \
         offers more and more improvement over Grace Hash."
    );
    Ok(())
}
