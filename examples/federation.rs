//! Federated serving demo: a seeded fault plan kills one shard of a
//! three-shard federation mid-run, and replicated placement + failover
//! keep every answer byte-identical to a single-engine oracle.
//!
//! ```text
//! cargo run --release --example federation -- <seed> [--strict]
//! ```
//!
//! With `--strict`, the demo instead kills *two* shards so some chunks
//! lose every replica, and shows the typed degradation: a partial result
//! carrying the exact missing-chunk set (or `Error::Unavailable` in
//! strict mode — which is what `--strict` demonstrates).
//!
//! The event log lands in `fed_events_<seed>.jsonl` and the flight
//! recorder's retained traces in `fed_flightrec_<seed>.jsonl` whether
//! the run passes or fails, so CI can upload both for post-mortems. The
//! slowest stitched span tree is printed at the end of every run. Any
//! violated invariant exits nonzero.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::{silence_injected_panics, FaultInjector, FaultPlan, ShardDeathSpec};
use orv::obs::{names, Obs};
use orv::query::{FederatedService, FederationConfig, QueryEngine};

const QUERIES: [&str; 3] = [
    "SELECT * FROM ft WHERE x IN [0, 5]",
    "SELECT COUNT(*) FROM ft",
    "SELECT z, COUNT(*), MIN(p), MAX(p) FROM ft GROUP BY z",
];

fn deployment() -> Deployment {
    let d = Deployment::in_memory(2);
    generate_dataset(
        &DatasetSpec::builder("ft")
            .grid([8, 8, 2])
            .partition([2, 2, 1])
            .scalar_attrs(&["p"])
            .seed(29)
            .build(),
        &d,
    )
    .expect("dataset generation is fault-free");
    d
}

fn main() {
    let mut seed: u64 = 7;
    let mut strict = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            s => {
                seed = s.parse().unwrap_or_else(|_| {
                    eprintln!("usage: federation [seed] [--strict]");
                    std::process::exit(2);
                })
            }
        }
    }
    silence_injected_panics();

    let cfg = FederationConfig {
        strict,
        ..FederationConfig::default()
    };
    let dead_shard = (seed % cfg.shards as u64) as usize;
    let mut shard_deaths = vec![ShardDeathSpec {
        shard: dead_shard,
        after_subqueries: seed % 4,
    }];
    if strict {
        // Kill a second shard too: with R = 2 of 3 shards, some chunks
        // lose both replicas and the router must degrade *typed*.
        shard_deaths.push(ShardDeathSpec {
            shard: (dead_shard + 1) % cfg.shards,
            after_subqueries: 0,
        });
    }
    let plan = FaultPlan {
        seed,
        shard_deaths,
        max_faults: 8,
        ..FaultPlan::none()
    };
    println!("federation seed {seed}: killing shard {dead_shard} ({plan:?})");

    let obs = Obs::enabled();
    let injector = FaultInjector::new_with_events(plan, obs.events.clone());
    let fed =
        FederatedService::with_instruments(deployment(), cfg, obs.clone(), Some(injector.clone()))
            .expect("federation construction is fault-free");
    let oracle_engine = QueryEngine::new(deployment());

    // Several rounds, so the seeded death (after `seed % 4` sub-queries
    // on its shard) always lands *mid-sequence*: some answers come off
    // the healthy path, the rest exercise failover.
    let mut failures = Vec::new();
    for round in 0..3 {
        for sql in QUERIES {
            let want = oracle_engine
                .execute(sql)
                .expect("oracle run is fault-free");
            match fed.execute(sql) {
                Ok(resp) if resp.is_complete() => {
                    if resp.result().rows == want.rows {
                        println!(
                            "  ok  round {round} ({} rows) {sql}",
                            resp.result().rows.len()
                        );
                    } else {
                        failures.push(format!("round {round}: row mismatch vs oracle for `{sql}`"));
                    }
                }
                Ok(resp) => {
                    failures.push(format!(
                        "round {round}: unexpected partial result for `{sql}` ({} rows)",
                        resp.result().rows.len()
                    ));
                }
                Err(e) if strict => {
                    println!("  strict degradation (expected): {e}");
                }
                Err(e) => failures.push(format!(
                    "round {round}: query failed terminally: `{sql}`: {e}"
                )),
            }
        }
    }

    // Export the log and the flight recorder before judging the run — a
    // failing run's log and retained traces are the post-mortem artifacts.
    let log_path = format!("fed_events_{seed}.jsonl");
    std::fs::write(&log_path, obs.events.to_json_lines()).expect("cannot write event log");
    let rec_path = format!("fed_flightrec_{seed}.jsonl");
    std::fs::write(&rec_path, fed.recorder().to_json_lines())
        .expect("cannot write flight recorder dump");

    let stats = injector.stats();
    let snap = obs.metrics.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!("injected: {stats:?}");
    println!(
        "fed counters: subqueries={} failovers={} shard_errors={} trips={} partial={} missing={}",
        counter(names::FED_SUBQUERIES),
        counter(names::FED_FAILOVERS),
        counter(names::FED_SHARD_ERRORS),
        counter(names::FED_TRIPS),
        counter(names::FED_PARTIAL),
        counter(names::FED_MISSING_CHUNKS),
    );
    println!("event log: {log_path}");
    println!("flight recorder: {rec_path}");
    if let Some(slowest) = fed.recorder().slowest().first() {
        println!("slowest stitched trace:\n{}", slowest.render_tree());
    }

    // Every executed query must leave a trace in the recorder — slow or
    // anomalous, nothing disappears.
    let executed = 3 * QUERIES.len() as u64;
    if fed.recorder().recorded() != executed {
        failures.push(format!(
            "flight recorder saw {} of {executed} queries",
            fed.recorder().recorded()
        ));
    }

    // Counters must agree with the injected fault log: a death that fired
    // before the last query implies at least one failover (non-strict),
    // and shard errors can never undercount failovers.
    if stats.shard_deaths == 0 {
        failures.push("the seeded shard death never fired (run is vacuous)".into());
    }
    if stats.shard_deaths > 0 && !strict && counter(names::FED_FAILOVERS) == 0 {
        failures.push("shard died but no failover was recorded".into());
    }
    if counter(names::FED_SHARD_ERRORS) < counter(names::FED_FAILOVERS) {
        failures.push("failovers outnumber shard errors (counter drift)".into());
    }
    if strict && stats.shard_deaths >= 2 && counter(names::FED_MISSING_CHUNKS) == 0 {
        failures.push("two dead shards but nothing went missing in strict mode".into());
    }

    if failures.is_empty() {
        println!("federation run OK");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
