//! Algorithm advisor: sweep dataset shapes and watch the Query Planning
//! Service switch between Indexed Join and Grace Hash.
//!
//! For each partitioning mismatch level the example prints the dataset
//! parameters of Table 1, both cost-model predictions, the planner's pick,
//! and — because these datasets are laptop-sized — the *measured* wall
//! time of both threaded QES implementations, so you can see the picks
//! being right (or wrong) in real time.
//!
//! ```text
//! cargo run --release --example algorithm_advisor
//! ```

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::costmodel::{calibrate_host, choose_algorithm, CostParams, SystemParams};
use orv::join::{grace_hash_join, indexed_join, GraceHashConfig, IndexedJoinConfig, JoinAlgorithm};
use orv::types::Result;

fn main() -> Result<()> {
    let n_compute = 4;
    let cal = calibrate_host(500_000);
    println!(
        "host calibration: α_build = {:.0} ns, α_lookup = {:.0} ns\n",
        cal.alpha_build * 1e9,
        cal.alpha_lookup * 1e9
    );
    println!(
        "{:>3} {:>12} {:>10} {:>10} {:>6} {:>10} {:>10} {:>8}",
        "i", "n_e·c_S", "IJ meas", "GH meas", "pick", "IJ model", "GH model", "correct"
    );

    for i in 0..=5u32 {
        // The Figure-4 family at laptop scale: mismatch doubles per step.
        let narrow = 64u64 >> i;
        let (p, q) = ([64, narrow, 1], [narrow, 64, 1]);
        let deployment = Deployment::in_memory(2);
        let h1 = generate_dataset(
            &DatasetSpec::builder("t1")
                .grid([256, 256, 1])
                .partition(p)
                .scalar_attrs(&["oilp"])
                .seed(1)
                .build(),
            &deployment,
        )?;
        let h2 = generate_dataset(
            &DatasetSpec::builder("t2")
                .grid([256, 256, 1])
                .partition(q)
                .scalar_attrs(&["wp"])
                .seed(2)
                .build(),
            &deployment,
        )?;

        let attrs = ["x", "y", "z"];
        let ij = indexed_join(
            &deployment,
            h1.table,
            h2.table,
            &attrs,
            &IndexedJoinConfig {
                n_compute,
                ..Default::default()
            },
        )?;
        let gh = grace_hash_join(
            &deployment,
            h1.table,
            h2.table,
            &attrs,
            &GraceHashConfig {
                n_compute,
                ..Default::default()
            },
        )?;

        // Model the host: in-memory "disks" and "network".
        let n_e = deployment
            .metadata()
            .get_join_index(h1.table, h2.table, &attrs)
            .map(|p| p.len() as f64)
            .expect("IJ stored the join index");
        let d = CostParams {
            t: h1.total_tuples() as f64,
            c_r: h1.tuples_per_chunk() as f64,
            c_s: h2.tuples_per_chunk() as f64,
            n_e,
            rs_r: h1.record_size() as f64,
            rs_s: h2.record_size() as f64,
        };
        // GH's bucket "I/O" on the host is per-byte serialization CPU,
        // which calibration measured.
        let s = SystemParams {
            net_bw: 8.0e9,
            read_io_bw: cal.decode_bw,
            write_io_bw: cal.encode_bw,
            n_s: 2.0,
            n_j: n_compute as f64,
            alpha_build: cal.alpha_build,
            alpha_lookup: cal.alpha_lookup,
        };
        let choice = choose_algorithm(&d, &s)?;
        let pick = if choice.indexed_join {
            JoinAlgorithm::IndexedJoin
        } else {
            JoinAlgorithm::GraceHash
        };
        let measured_ij_wins = ij.stats.wall_secs < gh.stats.wall_secs;
        let correct = choice.indexed_join == measured_ij_wins;
        println!(
            "{:>3} {:>12.3e} {:>9.3}s {:>9.3}s {:>6} {:>9.3}s {:>9.3}s {:>8}",
            i,
            d.ne_cs(),
            ij.stats.wall_secs,
            gh.stats.wall_secs,
            pick.to_string(),
            choice.ij_total,
            choice.gh_total,
            correct
        );
    }
    println!("\n(the planner's job is exactly this table: pick the faster QES per dataset)");
    Ok(())
}
