//! Quickstart: expose two flat-file datasets as virtual tables, define a
//! join-based view, and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::query::QueryEngine;

fn main() -> orv::types::Result<()> {
    // A storage cluster of 2 nodes holding chunks in memory. Swap for
    // `Deployment::on_disk(dir, 2)` to use real chunk files.
    let deployment = Deployment::in_memory(2);

    // Two simulation outputs over the same 16×16×4 grid: oil pressure and
    // water pressure, partitioned differently (as different parallel runs
    // would be).
    let t1 = DatasetSpec::builder("t1")
        .grid([16, 16, 4])
        .partition([8, 8, 4])
        .scalar_attrs(&["oilp"])
        .seed(7)
        .build();
    let t2 = DatasetSpec::builder("t2")
        .grid([16, 16, 4])
        .partition([4, 16, 4])
        .scalar_attrs(&["wp"])
        .seed(8)
        .build();
    let h1 = generate_dataset(&t1, &deployment)?;
    let h2 = generate_dataset(&t2, &deployment)?;
    println!(
        "generated {} ({} tuples in {} chunks) and {} ({} tuples in {} chunks)",
        h1.name,
        h1.total_tuples(),
        h1.num_chunks(),
        h2.name,
        h2.total_tuples(),
        h2.num_chunks()
    );

    // The paper's V1 = T1 ⊕_{xyz} T2 view; the planner picks IJ or GH from
    // the cost models.
    let engine = QueryEngine::new(deployment);
    engine.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")?;

    let result = engine.execute("SELECT * FROM v1 WHERE x IN [0, 3] AND y IN [0, 3]")?;
    println!(
        "\nSELECT * FROM v1 WHERE x IN [0,3] AND y IN [0,3] → {} rows",
        result.rows.len()
    );
    println!("columns: {:?}", result.columns);
    for row in result.rows.iter().take(5) {
        println!("  {row}");
    }
    if let Some(explain) = &result.explain {
        println!(
            "\nplanner chose {} (predicted IJ {:.3}s vs GH {:.3}s on the modelled cluster)",
            explain.algorithm, explain.choice.ij_total, explain.choice.gh_total
        );
    }

    // Aggregation over the view.
    let result = engine.execute("SELECT z, AVG(wp), MAX(oilp) FROM v1 GROUP BY z")?;
    println!("\nSELECT z, AVG(wp), MAX(oilp) FROM v1 GROUP BY z");
    for row in &result.rows {
        println!("  {row}");
    }
    Ok(())
}
