//! Satellite data processing — another of the paper's motivating domains
//! ("imaging or sensor data associated with geophysical sensors,
//! satellites, digital microscopy").
//!
//! Two instruments image the same area: an optical sensor producing
//! `radiance` and a thermal sensor producing `temp`. Each acquisition is a
//! time slice; the instruments tile the scene differently (optical in
//! large swaths, thermal in small granules), so correlating them is
//! exactly the mismatched-partition join the paper studies. The z
//! coordinate serves as acquisition time.
//!
//! ```text
//! cargo run --release --example satellite_mosaic
//! ```

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::query::QueryEngine;
use orv::types::Result;

fn main() -> Result<()> {
    let deployment = Deployment::in_memory(3);

    // 64×64 pixels × 8 acquisitions. Optical swaths: 64×8 pixel strips per
    // time step; thermal granules: 8×64 strips — orthogonal tilings.
    let optical = DatasetSpec::builder("optical")
        .grid([64, 64, 8])
        .partition([64, 8, 1])
        .scalar_attrs(&["radiance", "cloud"])
        .seed(2024)
        .build();
    let thermal = DatasetSpec::builder("thermal")
        .grid([64, 64, 8])
        .partition([8, 64, 1])
        .scalar_attrs(&["temp"])
        .seed(2025)
        .build();
    let h1 = generate_dataset(&optical, &deployment)?;
    let h2 = generate_dataset(&thermal, &deployment)?;
    println!(
        "optical: {} px in {} swaths;  thermal: {} px in {} granules",
        h1.total_tuples(),
        h1.num_chunks(),
        h2.total_tuples(),
        h2.num_chunks()
    );

    let engine = QueryEngine::new(deployment);
    // Pixel-level fusion of the two instruments (z = acquisition time).
    engine.execute("CREATE VIEW fused AS SELECT * FROM optical JOIN thermal ON (x, y, z)")?;

    // Region of interest: a 16×16 patch over the full time series.
    let roi = engine.execute(
        "SELECT x, y, z, radiance, temp FROM fused WHERE x IN [24, 39] AND y IN [24, 39]",
    )?;
    println!("\nROI fusion: {} pixel-samples", roi.rows.len());
    if let Some(explain) = &roi.explain {
        println!(
            "planner chose {} for the orthogonal tilings (n_e = {}, edge ratio {:.3})",
            explain.algorithm,
            explain.dataset.n_e,
            explain.dataset.edge_ratio()
        );
    }

    // Layered DDS: a per-acquisition scene summary over the fused view.
    engine.execute(
        "CREATE VIEW scene_stats AS SELECT z, AVG(radiance), AVG(temp), MAX(cloud) FROM fused GROUP BY z",
    )?;
    let series = engine.execute("SELECT * FROM scene_stats")?;
    println!("\nper-acquisition summary ({}):", series.columns.join(", "));
    for row in &series.rows {
        println!(
            "  t={}: radiance {:.4}, temp {:.4}, peak cloud {:.4}",
            row.get(0),
            row.get(1).as_f64(),
            row.get(2).as_f64(),
            row.get(3).as_f64()
        );
    }

    // Which acquisitions are warm on average? Post-filter the aggregate.
    let warm = engine.execute("SELECT * FROM scene_stats WHERE z >= 4")?;
    println!("\nlate acquisitions (t ≥ 4): {} rows", warm.rows.len());
    Ok(())
}
