//! Run both join QES implementations over a small generated oil-reservoir
//! dataset pair with full observability enabled, print the predicted-vs-
//! measured phase breakdown of each, and export the combined report as
//! `BENCH_obs.json`.
//!
//! ```text
//! cargo run --release --example obs_report
//! ```

use orv::obs_report::{standard_report, ReportConfig};

fn main() {
    let cfg = ReportConfig::default();
    println!(
        "dataset: {:?} grid, partitions {:?} / {:?}, {} storage + {} compute nodes\n",
        cfg.grid, cfg.left_partition, cfg.right_partition, cfg.n_storage, cfg.n_compute
    );
    let report = standard_report(&cfg).expect("observed run failed");
    for run in &report.runs {
        println!("{}", run.render_table());
    }
    let json = report.to_json();
    std::fs::write("BENCH_obs.json", &json).expect("cannot write BENCH_obs.json");
    println!("wrote BENCH_obs.json ({} bytes)", json.len());
}
