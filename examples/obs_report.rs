//! Run both join QES implementations over a small generated oil-reservoir
//! dataset pair with full observability enabled, print the predicted-vs-
//! measured phase breakdown of each, and export the combined report as
//! `BENCH_obs.json`.
//!
//! Also demonstrates the engine-level Caching Service counters: a cold
//! view scan followed by a warm one, reported through the named
//! [`CacheStats`] struct (`hits` / `misses` / `evictions`) rather than a
//! bare tuple.
//!
//! ```text
//! cargo run --release --example obs_report
//! ```

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::obs_report::{standard_report, ReportConfig};
use orv::prelude::QueryEngine;

fn main() {
    let cfg = ReportConfig::default();
    println!(
        "dataset: {:?} grid, partitions {:?} / {:?}, {} storage + {} compute nodes\n",
        cfg.grid, cfg.left_partition, cfg.right_partition, cfg.n_storage, cfg.n_compute
    );
    let report = standard_report(&cfg).expect("observed run failed");
    for run in &report.runs {
        println!("{}", run.render_table());
    }

    // Cold-vs-warm view scan through the shared Caching Service, read
    // back as named stats.
    let d = Deployment::in_memory(1);
    for (name, scalar, seed) in [("t1", "oilp", 1u64), ("t2", "wp", 2)] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([16, 16, 1])
                .partition([4, 4, 1])
                .scalar_attrs(&[scalar])
                .seed(seed)
                .build(),
            &d,
        )
        .expect("dataset generation");
    }
    let engine = QueryEngine::new(d);
    engine
        .execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")
        .expect("create view");
    engine.execute("SELECT * FROM v1").expect("cold scan");
    let cold = engine.cache_stats();
    engine.execute("SELECT * FROM v1").expect("warm scan");
    let warm = engine.cache_stats();
    println!("\ncaching service (cold scan then warm scan):");
    println!(
        "  cold: {} hits / {} misses / {} evictions ({} lookups)",
        cold.hits,
        cold.misses,
        cold.evictions,
        cold.lookups()
    );
    println!(
        "  warm: {} hits / {} misses / {} evictions ({:.0}% hit rate)",
        warm.hits,
        warm.misses,
        warm.evictions,
        warm.hit_rate() * 100.0
    );
    assert_eq!(
        warm.misses, cold.misses,
        "a warm scan must not refetch a single sub-table"
    );

    let json = report.to_json();
    std::fs::write("BENCH_obs.json", &json).expect("cannot write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json ({} bytes)", json.len());
}
