//! Seed-matrix chaos driver: run one full query through the engine under
//! a seeded fault plan — transient errors, delays, a worker crash, and
//! (with `--heavy`) silent corruption on every checksummed boundary —
//! then prove the resilience story end to end:
//!
//! 1. the query's rows match a no-fault oracle run,
//! 2. every injected corruption was *detected* by a checksum, and
//! 3. the whole run is written out as a replayable JSON-lines event log.
//!
//! ```text
//! cargo run --release --example chaos -- <seed> [--heavy]
//! ```
//!
//! The event log lands in `chaos_events_<seed>.jsonl` whether the run
//! passes or fails, so CI can upload it as an artifact for post-mortems.
//! Any violated invariant exits nonzero.

use orv::bds::{generate_dataset, DatasetSpec, Deployment};
use orv::cluster::{silence_injected_panics, FaultPlan};
use orv::obs::Obs;
use orv::query::QueryEngine;

const JOIN_SQL: &str = "SELECT * FROM ca JOIN cb ON (x, y, z)";

fn deployment() -> Deployment {
    let d = Deployment::in_memory(2);
    for (name, scalar, seed, part) in [("ca", "u", 41u64, [3, 3, 2]), ("cb", "v", 42, [2, 3, 1])] {
        generate_dataset(
            &DatasetSpec::builder(name)
                .grid([6, 6, 2])
                .partition(part)
                .scalar_attrs(&[scalar])
                .seed(seed)
                .build(),
            &d,
        )
        .expect("dataset generation is fault-free");
    }
    d
}

fn main() {
    let mut seed: u64 = 7;
    let mut heavy = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--heavy" => heavy = true,
            s => {
                seed = s.parse().unwrap_or_else(|_| {
                    eprintln!("usage: chaos [seed] [--heavy]");
                    std::process::exit(2);
                })
            }
        }
    }
    silence_injected_panics();

    // The oracle: the same query on a fault-free engine.
    let oracle = QueryEngine::new(deployment())
        .execute(JOIN_SQL)
        .expect("oracle run is fault-free");

    let plan = if heavy {
        FaultPlan::corrupting(seed)
    } else {
        FaultPlan::from_seed(seed)
    };
    println!(
        "chaos seed {seed}{}: {plan:?}",
        if heavy { " (corruption-heavy)" } else { "" }
    );

    let obs = Obs::enabled();
    let injector = plan.injector_with_events(obs.events.clone());
    let engine = QueryEngine::new(deployment())
        .with_obs(obs.clone())
        .with_faults(injector.clone());
    let result = engine.execute(JOIN_SQL);

    // Export the log before judging the run — a failing run's log is the
    // post-mortem artifact.
    let log_path = format!("chaos_events_{seed}.jsonl");
    std::fs::write(&log_path, obs.events.to_json_lines()).expect("cannot write event log");

    let stats = injector.stats();
    let detected = obs.events.events_of_kind("corruption_detected").len() as u64;
    let failovers = obs.events.events_of_kind("qes_failover");
    println!("injected: {stats:?}");
    println!(
        "corruptions detected: {detected}/{}, failovers: {}",
        stats.corruptions(),
        failovers.len()
    );
    for ev in &failovers {
        println!(
            "  qes_failover: {} -> {}",
            ev.fields["from"].as_str().unwrap_or("?"),
            ev.fields["to"].as_str().unwrap_or("?")
        );
    }
    println!("event log: {log_path}");

    let mut failures = Vec::new();
    match result {
        Ok(r) if r.rows == oracle.rows => {
            println!("rows: {} (oracle match)", r.rows.len());
        }
        Ok(r) => failures.push(format!(
            "row mismatch: chaos run returned {} rows, oracle {}",
            r.rows.len(),
            oracle.rows.len()
        )),
        Err(e) => failures.push(format!("query failed terminally: {e}")),
    }
    if detected != stats.corruptions() {
        failures.push(format!(
            "detection gap: {} corruptions injected, {detected} detected",
            stats.corruptions()
        ));
    }
    if heavy && stats.corruptions() == 0 {
        failures.push("corruption-heavy plan never fired a corruption".into());
    }

    if failures.is_empty() {
        println!("chaos run OK");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
