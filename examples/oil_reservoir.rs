//! Oil-reservoir management study — the paper's Section 2 motivating
//! application, end to end.
//!
//! Several simulation runs ("reservoirs") write 21-attribute outputs to a
//! storage cluster in different binary layouts. A scientist then asks the
//! kinds of questions Section 2 lists: fetch `wp` and `soil` for all grid
//! points of reservoir 0, and "find all reservoirs with average wp > 0.5".
//!
//! ```text
//! cargo run --example oil_reservoir
//! ```

use orv::bds::{generate_dataset, DatasetSpec, Deployment, ScalarModel};
use orv::layout::{Endian, RecordOrder};
use orv::query::QueryEngine;
use orv::types::Value;

fn main() -> orv::types::Result<()> {
    let deployment = Deployment::in_memory(4);

    // Reservoir simulations produce one table per property group. T1
    // carries oil-phase properties; T2 carries the water phase plus 15
    // more scalar fields — 21 attributes total, 4 bytes each (Section 2).
    // They use *different* on-disk formats: T1 row-major little-endian
    // with a 64-byte header, T2 column-major big-endian — the layout
    // language generates an extractor for each.
    let t1 = DatasetSpec::builder("t1")
        .grid([32, 32, 8])
        .partition([16, 16, 8])
        .scalar_attrs(&["oilp", "soil", "vx"])
        .seed(41)
        .scalar_model(ScalarModel::Plume)
        .header(64)
        .build();
    let water_scalars: Vec<String> = std::iter::once("wp".to_string())
        .chain((0..14).map(|i| format!("aux{i}")))
        .collect();
    let water_refs: Vec<&str> = water_scalars.iter().map(|s| s.as_str()).collect();
    let t2 = DatasetSpec::builder("t2")
        .grid([32, 32, 8])
        .partition([8, 32, 8])
        .scalar_attrs(&water_refs)
        .seed(42)
        .scalar_model(ScalarModel::Plume)
        .endian(Endian::Big)
        .order(RecordOrder::ColumnMajor)
        .build();
    let h1 = generate_dataset(&t1, &deployment)?;
    let h2 = generate_dataset(&t2, &deployment)?;
    println!(
        "reservoir dataset: {} tuples/table, record sizes {} + {} bytes (21 attrs total)",
        h1.total_tuples(),
        h1.record_size(),
        h2.record_size(),
    );

    let engine = QueryEngine::new(deployment);

    // The Section 2 view: V1 = T1 ⊕_{xy..} T2, so wp and soil can be read
    // together per grid point.
    engine.execute("CREATE VIEW v1 AS SELECT * FROM t1 JOIN t2 ON (x, y, z)")?;

    // "access water pressure (wp) and saturation of oil (soil) attributes
    //  of all grid points in reservoir 0" — reservoir 0 is the x<16 half.
    let r = engine.execute("SELECT x, y, z, wp, soil FROM v1 WHERE x IN [0, 15]")?;
    println!(
        "\nwp+soil for reservoir 0: {} grid points, e.g. {}",
        r.rows.len(),
        r.rows[0]
    );
    if let Some(explain) = &r.explain {
        println!(
            "planner: {} (IJ {:.2}s vs GH {:.2}s predicted; n_e = {})",
            explain.algorithm,
            explain.choice.ij_total,
            explain.choice.gh_total,
            explain.dataset.n_e
        );
    }

    // "Find all reservoirs with average wp > τ" (the paper uses τ = 0.5 on
    // its uniform field; our plume field concentrates pressure, so τ = 0.1
    // discriminates): reservoirs are x-halves here.
    let tau = 0.1;
    let mut reservoirs = Vec::new();
    for (id, (lo, hi)) in [(0, (0.0, 15.0)), (1, (16.0, 31.0))] {
        let r = engine.execute(&format!(
            "SELECT AVG(wp), COUNT(*) FROM v1 WHERE x IN [{lo}, {hi}]"
        ))?;
        let avg = r.rows[0].get(0).as_f64();
        let count = r.rows[0].get(1);
        println!("reservoir {id}: AVG(wp) = {avg:.4} over {count} points");
        if avg > tau {
            reservoirs.push(id);
        }
    }
    println!("reservoirs with average wp > {tau}: {reservoirs:?}");

    // Layered DDS: name the depth profile itself as a view and query it —
    // "Derived Data Sources are layered on BDSs or other DDSs".
    engine.execute(
        "CREATE VIEW depth_profile AS SELECT z, AVG(oilp), AVG(wp), MIN(soil), MAX(soil) FROM v1 GROUP BY z",
    )?;
    let r = engine.execute("SELECT * FROM depth_profile")?;
    println!("\ndepth profile ({} layers):", r.rows.len());
    println!("  {:?}", r.columns);
    for row in &r.rows {
        let z = match row.get(0) {
            Value::I32(z) => z,
            other => panic!("unexpected z {other}"),
        };
        println!(
            "  z={z}: oilp {:.4}  wp {:.4}  soil [{:.4}, {:.4}]",
            row.get(1).as_f64(),
            row.get(2).as_f64(),
            row.get(3).as_f64(),
            row.get(4).as_f64()
        );
    }
    Ok(())
}
