//! Offline stand-in for `serde_json`. Compiles call sites; all functions
//! fail at runtime (the stub serde cannot actually serialize).

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

fn stubbed<T>() -> Result<T, Error> {
    Err(Error("serde_json stubbed for offline builds".into()))
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    stubbed()
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    stubbed()
}

pub fn to_vec<T: serde::Serialize + ?Sized>(_value: &T) -> Result<Vec<u8>, Error> {
    stubbed()
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    stubbed()
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T, Error> {
    stubbed()
}
