//! Offline stand-in for `criterion`: runs each benchmark body a few times
//! and prints nothing. Enough to compile and smoke-run bench targets.

use std::fmt::Display;
use std::time::Duration;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self }
    }

    pub fn bench_function(&mut self, _name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        f(&mut Bencher {});
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, _name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        f(&mut Bencher {});
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        f(&mut Bencher {}, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..2 {
            black_box(f());
        }
    }
}

pub struct BenchmarkId {}

impl BenchmarkId {
    pub fn new(_name: impl Into<String>, _param: impl Display) -> Self {
        BenchmarkId {}
    }

    pub fn from_parameter(_param: impl Display) -> Self {
        BenchmarkId {}
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
