//! Offline stand-in for `serde`: marker traits only. Serialization is not
//! functional — `serde_json` stub functions return errors at runtime.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

macro_rules! impl_marker {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_marker!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize> Serialize for [T] {}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
