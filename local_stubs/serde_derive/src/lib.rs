//! Offline stand-in for `serde_derive`: emits empty marker-trait impls.
//! Handles non-generic structs/enums (all this workspace derives on).

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following the first top-level
/// `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    panic!("serde_derive stub: no struct/enum found");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
