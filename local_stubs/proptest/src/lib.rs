//! Offline stand-in for `proptest`: a working (non-shrinking) property
//! test runner covering the strategy surface this workspace uses.

pub mod test_runner {
    /// splitmix64 generator, seeded deterministically per test name.
    pub struct TestRng(pub u64);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in [0, n).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of a strategy, for `BoxedStrategy`/`prop_oneof!`.
    pub trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof![w => s]`).
    pub struct WeightedUnion<T>(pub Vec<(u32, BoxedStrategy<T>)>);

    impl<T> Strategy for WeightedUnion<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.0.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.0 {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.0.last().expect("non-empty union").1.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                        assert!(lo <= hi, "empty range strategy");
                        (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5));
}

pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized + 'static {
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    struct FullRange<T>(fn(&mut TestRng) -> T);

    impl<T> Strategy for FullRange<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary() -> BoxedStrategy<$t> {
                        FullRange(|rng: &mut TestRng| rng.next_u64() as $t).boxed()
                    }
                }
            )*
        };
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            FullRange(|rng: &mut TestRng| rng.next_u64() & 1 == 1).boxed()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary() -> BoxedStrategy<f32> {
            FullRange(|rng: &mut TestRng| f32::from_bits(rng.next_u64() as u32)).boxed()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary() -> BoxedStrategy<f64> {
            FullRange(|rng: &mut TestRng| f64::from_bits(rng.next_u64())).boxed()
        }
    }

    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            let mut out = std::collections::HashSet::new();
            // Capped attempts: duplicates may keep the set under `n`.
            for _ in 0..(n * 4).max(4) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T>(Vec<T>);

    /// Uniform choice from a non-empty list of values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $( $(#[doc = $doc:expr])* #[test] fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cfg.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}
