//! Offline stand-in for `crossbeam` channels backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}
