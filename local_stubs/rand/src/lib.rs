//! Offline stand-in for `rand` (declared but unused in this workspace).
