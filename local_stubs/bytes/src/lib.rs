//! Offline stand-in for `bytes::Bytes` backed by `Arc<Vec<u8>>`.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, Debug, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
